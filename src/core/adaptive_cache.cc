#include "core/adaptive_cache.hh"

#include <sstream>

#include "adapt/imitation.hh"
#include "obs/trace.hh"
#include "util/stat_registry.hh"

namespace adcache
{

AdaptiveConfig
AdaptiveConfig::fivePolicy(std::uint64_t size_bytes, unsigned assoc,
                           unsigned line_size)
{
    AdaptiveConfig c;
    c.sizeBytes = size_bytes;
    c.assoc = assoc;
    c.lineSize = line_size;
    c.policies = {PolicyType::LRU, PolicyType::LFU, PolicyType::FIFO,
                  PolicyType::MRU, PolicyType::Random};
    // With five components a deeper window separates them better.
    c.historyDepth = 2 * assoc;
    return c;
}

AdaptiveCache::AdaptiveCache(const AdaptiveConfig &config)
    : config_(config), geom_(config.geometry()), map_(geom_),
      rng_(config.rngSeed), tags_(geom_.numSets, geom_.assoc),
      selector_(adapt::Selector::makeAdaptive(
          geom_.numSets, unsigned(config.policies.size()),
          config.exactCounters,
          config.historyDepth != 0 ? config.historyDepth
                                   : geom_.assoc))
{
    adcache_assert(config.policies.size() >= 2 &&
                   config.policies.size() <= 32);
    adcache_assert(config.admission.empty() ||
                   config.admission.size() == config.policies.size());

    if (config.anyAdmission())
        admission_ = std::make_unique<adapt::TinyLfuAdmission>(
            adapt::SketchParams::forGeometry(geom_.numSets,
                                             geom_.assoc));

    shadows_.reserve(config.policies.size());
    for (std::size_t k = 0; k < config.policies.size(); ++k) {
        const bool admit =
            k < config.admission.size() && config.admission[k];
        shadows_.emplace_back(geom_, config.policies[k],
                              config.partialTagBits,
                              config.xorFoldTags, &rng_,
                              admit ? admission_.get() : nullptr);
    }

    const auto num_policies = unsigned(config.policies.size());
    decisions_.assign(std::size_t(geom_.numSets) * num_policies, 0);
    fallbackPtr_.assign(geom_.numSets, 0);
    outcomeScratch_.assign(num_policies, ShadowOutcome{});
    lastWinner_.assign(geom_.numSets, 0xFF);
}

std::uint64_t
AdaptiveCache::shadowMisses(unsigned k) const
{
    return shadows_.at(k).misses();
}

PolicyType
AdaptiveCache::componentPolicy(unsigned k) const
{
    return shadows_.at(k).policyType();
}

bool
AdaptiveCache::contains(Addr addr) const
{
    return tags_.lookup(map_.set(addr), map_.tag(addr)) !=
           TagArray::kNoWay;
}

std::span<const std::uint64_t>
AdaptiveCache::decisionsFor(unsigned set) const
{
    adcache_assert(set < geom_.numSets);
    const auto k = numPolicies();
    return {decisions_.data() + std::size_t(set) * k, k};
}

void
AdaptiveCache::clearDecisions()
{
    for (auto &c : decisions_)
        c = 0;
}

AccessResult
AdaptiveCache::access(Addr addr, bool is_write)
{
    AccessResult result;
    ++stats_.accesses;

    const unsigned set = map_.set(addr);
    const Addr tag = map_.tag(addr);
    const auto num_policies = unsigned(shadows_.size());

    // The admission filter sees every candidate before any component
    // simulation consults it (the oracle follows the same order).
    if (admission_)
        admission_->touch(shadows_[0].foldTag(tag));

    // Update every component simulation for this reference and build
    // the differentiating-miss mask (Sec. 2.3: "On every memory block
    // reference, we update the parallel tag structures"). The outcome
    // buffer is a member so the hot path never allocates.
    ShadowOutcome *outcomes = outcomeScratch_.data();
    std::uint32_t miss_mask = 0;
    for (unsigned k = 0; k < num_policies; ++k) {
        outcomes[k] = shadows_[k].access(addr);
        if (outcomes[k].miss)
            miss_mask |= 1u << k;
    }

    // Record only differentiating misses: if all components missed
    // (or none did) the event carries no preference information.
    // The tracing gate lives inside the some-shadow-missed block so
    // the (dominant) all-hit path never tests it.
    const std::uint32_t all = (num_policies >= 32)
                                  ? ~std::uint32_t{0}
                                  : (1u << num_policies) - 1;
    if (miss_mask != 0) {
        selector_.record(set, miss_mask);
        if (obs::traceEnabled()) {
            if (miss_mask != all)
                obs::emit(obs::diffMissEvent(stats_.accesses, set,
                                             miss_mask));
            for (unsigned k = 0; k < num_policies; ++k) {
                if (outcomes[k].evicted)
                    shadows_[k].traceEvict(stats_.accesses, set, k,
                                           outcomes[k]);
            }
        }
    }

    // Real cache lookup. Hits never consult the adaptivity logic and
    // leave the critical path untouched (Sec. 3.3).
    const unsigned way = tags_.lookup(set, tag);
    if (way != TagArray::kNoWay) {
        ++stats_.hits;
        if (is_write)
            tags_.markDirty(set, way);
        result.hit = true;
        return result;
    }

    ++stats_.misses;
    if (is_write)
        ++stats_.writeMisses;
    else
        ++stats_.readMisses;

    unsigned fill_way = tags_.invalidWay(set);
    if (fill_way == TagArray::kNoWay) {
        const unsigned winner = selector_.winner(set);
        ++decisions_[std::size_t(set) * num_policies + winner];

        // Imitate the winner's admission verdict: when its shadow
        // refused to fill, the real cache keeps its contents too.
        // The decision is still counted — "bypass" was the winning
        // component's replacement choice.
        if (outcomes[winner].bypassed) {
            ++bypasses_;
            return result;
        }

        adapt::WaySetView<TagArray, ShadowCache> view(
            tags_, shadows_[winner], set, geom_.assoc,
            &fallbackPtr_[set]);
        const auto choice = adapt::imitateVictim(
            view, outcomes[winner].evicted,
            outcomes[winner].evictedTag);
        if (choice.kind == adapt::VictimCase::Fallback)
            ++fallbacks_;
        fill_way = choice.handle;
        const obs::EvictCase evict_case = toEvictCase(choice.kind);

        if (obs::traceEnabled()) {
            const std::uint8_t last = lastWinner_[set];
            if (last != winner) {
                if (last != 0xFF)
                    obs::emit(obs::winnerFlipEvent(stats_.accesses,
                                                   set, last, winner));
                lastWinner_[set] = std::uint8_t(winner);
            }
            // tags_ still holds the victim: emit before the fill.
            obs::emit(obs::evictionEvent(stats_.accesses, set, winner,
                                         evict_case,
                                         tags_.tag(set, fill_way)));
        }

        ++stats_.evictions;
        if (tags_.dirty(set, fill_way)) {
            ++stats_.writebacks;
            result.writeback = true;
            result.writebackAddr =
                geom_.reconstruct(set, tags_.tag(set, fill_way));
        }
    }

    tags_.fill(set, fill_way, tag);
    if (is_write)
        tags_.markDirty(set, fill_way);
    return result;
}

std::string
AdaptiveCache::describe() const
{
    std::ostringstream out;
    out << "Adaptive[";
    for (std::size_t k = 0; k < config_.policies.size(); ++k) {
        if (k)
            out << "+";
        out << policyName(config_.policies[k]);
        if (k < config_.admission.size() && config_.admission[k])
            out << "/adm";
    }
    out << "] (" << (geom_.sizeBytes() / 1024) << "KB, " << geom_.assoc
        << "-way, ";
    if (config_.partialTagBits == 0)
        out << "full tags";
    else
        out << config_.partialTagBits << "-bit tags";
    if (config_.exactCounters)
        out << ", exact counters";
    out << ")";
    return out.str();
}


void
AdaptiveCache::registerStats(StatRegistry &reg,
                             const std::string &prefix) const
{
    stats_.registerInto(reg, prefix);
    for (unsigned k = 0; k < numPolicies(); ++k) {
        reg.counter(prefix + "shadow." +
                        policyName(componentPolicy(k)) + ".misses",
                    shadowMisses(k));
    }
    reg.counter(prefix + "fallback_evictions", fallbacks_);
    if (admission_)
        reg.counter(prefix + "admission_bypasses", bypasses_);
}

} // namespace adcache
