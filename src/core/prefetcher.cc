#include "core/prefetcher.hh"

#include <algorithm>
#include <cctype>

#include "util/bits.hh"
#include "util/logging.hh"

namespace adcache
{

PrefetcherType
parsePrefetcherType(const std::string &name)
{
    std::string n;
    for (char c : name)
        n.push_back(char(std::tolower(static_cast<unsigned char>(c))));
    if (n == "none" || n.empty())
        return PrefetcherType::None;
    if (n == "nextline" || n == "next-line")
        return PrefetcherType::NextLine;
    if (n == "stride" || n == "stream")
        return PrefetcherType::Stride;
    if (n == "adaptive" || n == "hybrid")
        return PrefetcherType::AdaptiveHybrid;
    fatal("unknown prefetcher '%s'", name.c_str());
}

const char *
prefetcherName(PrefetcherType type)
{
    switch (type) {
      case PrefetcherType::None: return "none";
      case PrefetcherType::NextLine: return "next-line";
      case PrefetcherType::Stride: return "stride";
      case PrefetcherType::AdaptiveHybrid: return "adaptive-hybrid";
    }
    return "?";
}

// ---------------------------------------------------------------
// NextLinePrefetcher
// ---------------------------------------------------------------

NextLinePrefetcher::NextLinePrefetcher(unsigned line_size,
                                       unsigned degree)
    : lineSize_(line_size), degree_(degree)
{
    adcache_assert(isPowerOfTwo(line_size));
    adcache_assert(degree >= 1);
}

void
NextLinePrefetcher::observe(Addr block_addr, bool miss,
                            std::vector<Addr> &out)
{
    if (!miss)
        return;
    for (unsigned d = 1; d <= degree_; ++d)
        out.push_back(block_addr + Addr(d) * lineSize_);
}

std::string
NextLinePrefetcher::describe() const
{
    return "next-" + std::to_string(degree_) + "-lines";
}

// ---------------------------------------------------------------
// StridePrefetcher
// ---------------------------------------------------------------

StridePrefetcher::StridePrefetcher(unsigned line_size,
                                   unsigned table_entries,
                                   unsigned degree)
    : lineSize_(line_size), degree_(degree), table_(table_entries)
{
    adcache_assert(isPowerOfTwo(line_size));
    adcache_assert(table_entries >= 1 && degree >= 1);
}

void
StridePrefetcher::observe(Addr block_addr, bool /*miss*/,
                          std::vector<Addr> &out)
{
    // Train on all demand traffic; 4KB regions localise streams.
    const Addr region = block_addr >> 12;
    Entry &e = table_[region % table_.size()];

    if (!e.valid || e.regionTag != region) {
        e.regionTag = region;
        e.lastBlock = block_addr;
        e.delta = 0;
        e.confidence = 0;
        e.valid = true;
        return;
    }

    const std::int64_t delta =
        std::int64_t(block_addr) - std::int64_t(e.lastBlock);
    if (delta == 0)
        return;
    if (delta == e.delta) {
        if (e.confidence < 3)
            ++e.confidence;
    } else {
        e.delta = delta;
        e.confidence = 1;
    }
    e.lastBlock = block_addr;

    if (e.confidence >= 2) {
        for (unsigned d = 1; d <= degree_; ++d) {
            const std::int64_t target =
                std::int64_t(block_addr) +
                e.delta * std::int64_t(d);
            if (target > 0)
                out.push_back(Addr(target) & ~Addr(lineSize_ - 1));
        }
    }
}

std::string
StridePrefetcher::describe() const
{
    return "stride-" + std::to_string(degree_);
}

// ---------------------------------------------------------------
// AdaptiveHybridPrefetcher
// ---------------------------------------------------------------

AdaptiveHybridPrefetcher::AdaptiveHybridPrefetcher(unsigned line_size,
                                                   unsigned window_depth,
                                                   unsigned tracker_size)
    : uselessness_(false, window_depth, 1, 2),
      trackerSize_(tracker_size)
{
    adcache_assert(tracker_size >= 1);
    components_[0] = std::make_unique<NextLinePrefetcher>(line_size, 2);
    components_[1] = std::make_unique<StridePrefetcher>(line_size, 64,
                                                        2);
}

unsigned
AdaptiveHybridPrefetcher::activeComponent() const
{
    // Fewest recently-useless suggestions wins (ties: next-line).
    return uselessness_.best(0);
}

const PrefetcherStats &
AdaptiveHybridPrefetcher::componentStats(unsigned k) const
{
    adcache_assert(k < 2);
    return stats_[k];
}

void
AdaptiveHybridPrefetcher::track(unsigned k, Addr block)
{
    auto &ring = outstanding_[k];
    // Already tracked: nothing to do.
    for (const auto &t : ring)
        if (t.block == block)
            return;
    if (ring.size() >= trackerSize_) {
        // The oldest suggestion retires; judge it.
        const Tracked old = ring.front();
        ring.pop_front();
        if (old.used) {
            ++stats_[k].useful;
        } else {
            ++stats_[k].useless;
            // Record a "useless" event against component k — the
            // prefetch analogue of a differentiating miss.
            uselessness_.record(0, 1u << k);
        }
    }
    ring.push_back({block, false});
    ++stats_[k].issued;
}

void
AdaptiveHybridPrefetcher::noteDemand(unsigned k, Addr block)
{
    for (auto &t : outstanding_[k])
        if (t.block == block)
            t.used = true;
}

void
AdaptiveHybridPrefetcher::observe(Addr block_addr, bool miss,
                                  std::vector<Addr> &out)
{
    // Credit suggestions the demand stream just validated.
    noteDemand(0, block_addr);
    noteDemand(1, block_addr);

    const unsigned active = activeComponent();
    for (unsigned k = 0; k < 2; ++k) {
        scratch_.clear();
        components_[k]->observe(block_addr, miss, scratch_);
        for (Addr a : scratch_) {
            track(k, a);
            if (k == active)
                out.push_back(a);
        }
    }
}

std::string
AdaptiveHybridPrefetcher::describe() const
{
    return "adaptive[" + components_[0]->describe() + "+" +
           components_[1]->describe() + "]";
}

std::unique_ptr<Prefetcher>
makePrefetcher(PrefetcherType type, unsigned line_size, unsigned degree)
{
    switch (type) {
      case PrefetcherType::None:
        return nullptr;
      case PrefetcherType::NextLine:
        return std::make_unique<NextLinePrefetcher>(line_size, degree);
      case PrefetcherType::Stride:
        return std::make_unique<StridePrefetcher>(line_size, 64,
                                                  degree);
      case PrefetcherType::AdaptiveHybrid:
        return std::make_unique<AdaptiveHybridPrefetcher>(line_size);
    }
    panic("unknown prefetcher type");
}

} // namespace adcache
