/**
 * @file
 * The paper's primary contribution: a set-associative cache that
 * adapts between component replacement policies (Algorithm 1).
 *
 * One shadow tag array per component policy tracks what each
 * component cache would contain; a per-set miss history buffer tracks
 * which component recently missed less; on every real miss the cache
 * imitates the currently-better component:
 *
 *   1. if the imitated policy also missed and the block it just
 *      evicted is resident in the adaptive cache, evict that block;
 *   2. otherwise evict any resident block that is *not* in the
 *      imitated policy's (shadow) contents;
 *   3. with partial tags both searches can fail due to aliasing, in
 *      which case an arbitrary block is evicted (Sec. 3.1).
 *
 * The class supports any number of component policies >= 2; the
 * two-policy LRU/LFU instance is the paper's headline configuration,
 * and the five-policy instance reproduces Sec. 4.4.
 */

#ifndef ADCACHE_CORE_ADAPTIVE_CACHE_HH
#define ADCACHE_CORE_ADAPTIVE_CACHE_HH

#include <memory>
#include <span>
#include <vector>

#include "adapt/selector.hh"
#include "adapt/sketch.hh"
#include "cache/cache_model.hh"
#include "cache/replacement.hh"
#include "cache/tag_array.hh"
#include "core/shadow_cache.hh"
#include "obs/event.hh"

namespace adcache
{

/** Configuration of an adaptive cache. */
struct AdaptiveConfig
{
    std::uint64_t sizeBytes = 512 * 1024;
    unsigned assoc = 8;
    unsigned lineSize = 64;

    /** Component policies, in priority (tie-break) order. */
    std::vector<PolicyType> policies{PolicyType::LRU, PolicyType::LFU};

    /** 0 = full tags; else stored shadow-tag width in bits. */
    unsigned partialTagBits = 0;

    /** Fold tags by XOR of bit groups instead of low-order bits. */
    bool xorFoldTags = false;

    /** Miss-history window depth m; 0 selects the paper default, the
     *  cache associativity. Ignored when exactCounters is set. */
    unsigned historyDepth = 0;

    /** Use exact since-start counters (the theory variant). */
    bool exactCounters = false;

    /**
     * Per-component TinyLFU admission flags (parallel to policies;
     * empty = admission off everywhere). A flagged component's shadow
     * bypasses full-set fills the filter refuses, and the real cache
     * imitates the bypass when that component wins — adaptivity over
     * *admission*, not just eviction.
     */
    std::vector<std::uint8_t> admission;

    std::uint64_t rngSeed = 1;

    bool
    anyAdmission() const
    {
        for (std::uint8_t f : admission)
            if (f)
                return true;
        return false;
    }

    CacheGeometry
    geometry() const
    {
        return CacheGeometry::fromSize(sizeBytes, assoc, lineSize);
    }

    /** Convenience two-policy constructor helper. */
    static AdaptiveConfig
    dual(PolicyType a, PolicyType b, std::uint64_t size_bytes = 512 * 1024,
         unsigned assoc = 8, unsigned line_size = 64)
    {
        AdaptiveConfig c;
        c.sizeBytes = size_bytes;
        c.assoc = assoc;
        c.lineSize = line_size;
        c.policies = {a, b};
        return c;
    }

    /** The five-policy configuration of Sec. 4.4. */
    static AdaptiveConfig fivePolicy(std::uint64_t size_bytes = 512 * 1024,
                                     unsigned assoc = 8,
                                     unsigned line_size = 64);
};

/** The adaptive cache (Algorithm 1). */
class AdaptiveCache : public CacheModel
{
  public:
    explicit AdaptiveCache(const AdaptiveConfig &config);

    AccessResult access(Addr addr, bool is_write) override;
    const CacheStats &stats() const override { return stats_; }
    const CacheGeometry &geometry() const override { return geom_; }
    std::string describe() const override;
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const override;

    /** Number of component policies. */
    unsigned numPolicies() const { return unsigned(shadows_.size()); }

    /** Misses suffered so far by component @p k's shadow. */
    std::uint64_t shadowMisses(unsigned k) const;

    /** Component policy type of shadow @p k. */
    PolicyType componentPolicy(unsigned k) const;

    /** True iff the block containing @p addr is resident. */
    bool contains(Addr addr) const;

    /**
     * Replacement decisions made in @p set, by imitated component,
     * since the last clearDecisions(). Drives the Fig. 7 phase maps.
     */
    std::span<const std::uint64_t> decisionsFor(unsigned set) const;

    /** Reset the per-set decision counters (per sampling quantum). */
    void clearDecisions();

    /** Times the partial-tag fallback ("arbitrary victim") fired. */
    std::uint64_t fallbackEvictions() const { return fallbacks_; }

    /** Full-set misses left unfilled because the winning component's
     *  admission filter refused the candidate. */
    std::uint64_t admissionBypasses() const { return bypasses_; }

    const AdaptiveConfig &config() const { return config_; }

  private:
    AdaptiveConfig config_;
    CacheGeometry geom_;
    AddrMap map_;
    Rng rng_;
    TagArray tags_;
    /** Shared TinyLFU filter of the admission-flagged components;
     *  declared before shadows_, which hold pointers into it. */
    std::unique_ptr<adapt::TinyLfuAdmission> admission_;
    std::vector<ShadowCache> shadows_;
    adapt::Selector selector_;
    std::vector<std::uint64_t> decisions_;  // [set * k + k], flat
    std::vector<unsigned> fallbackPtr_;                  // per set
    std::vector<ShadowOutcome> outcomeScratch_;  // per-access reuse
    /** Last imitated component per set (0xFF = none yet); only
     *  maintained while tracing is enabled, to detect winner flips. */
    std::vector<std::uint8_t> lastWinner_;
    CacheStats stats_;
    std::uint64_t fallbacks_ = 0;
    std::uint64_t bypasses_ = 0;
};

} // namespace adcache

#endif // ADCACHE_CORE_ADAPTIVE_CACHE_HH
