/**
 * @file
 * Analytic SRAM storage model reproducing the bit accounting of
 * Sec. 3.1–3.2: the +9.9 % full-tag / +4.0 % 8-bit-partial-tag
 * overheads of the 512 KB adaptive cache, the +2.1 % figure for
 * 128-byte lines, the +12.5 %/+25 % cost of growing a conventional
 * cache to 9/10 ways, and the ~0.16 %/0.09 % SBAR overheads.
 */

#ifndef ADCACHE_CORE_OVERHEAD_HH
#define ADCACHE_CORE_OVERHEAD_HH

#include <cstdint>

#include "cache/cache_model.hh"
#include "cache/replacement.hh"

namespace adcache
{

/**
 * Per-line miscellaneous metadata bits of the main tag array beyond
 * the tag itself: LRU/replacement state, valid, dirty, coherence —
 * the paper budgets 8 bits total (footnote 2).
 */
constexpr unsigned mainArrayMiscBits = 8;

/** Of those, bits holding the replacement (LRU) state (footnote 3:
 *  the component array need not replicate them — "minus 3KB"). */
constexpr unsigned mainArrayReplBits = 3;

/** Per-line policy metadata budget in a shadow array ("4 +/- bits for
 *  policy-specific meta-data", footnote 3/4). */
constexpr unsigned shadowPolicyMetaBits = 4;

/** Storage of one cache organisation, in bits. */
struct StorageBits
{
    std::uint64_t dataBits = 0;
    std::uint64_t tagBits = 0;     //!< main tags + misc metadata
    std::uint64_t shadowBits = 0;  //!< parallel tag arrays
    std::uint64_t historyBits = 0; //!< miss history buffers

    std::uint64_t
    totalBits() const
    {
        return dataBits + tagBits + shadowBits + historyBits;
    }

    double totalKB() const { return double(totalBits()) / 8.0 / 1024.0; }
};

/** Conventional cache: data + main tag array. */
StorageBits conventionalStorage(const CacheGeometry &geom);

/**
 * Two-policy adaptive cache storage.
 * @param partial_tag_bits 0 for full shadow tags.
 * @param history_depth    per-set miss-history bits m.
 * Applies the paper's LRU-state dedup credit (footnote: the main
 * array's replacement bits are not double-counted).
 */
StorageBits adaptiveStorage(const CacheGeometry &geom,
                            unsigned num_policies,
                            unsigned partial_tag_bits,
                            unsigned history_depth);

/**
 * SBAR-like cache storage: duplicate tags and history only for
 * @p num_leaders sets.
 */
StorageBits sbarStorage(const CacheGeometry &geom, unsigned num_leaders,
                        unsigned partial_tag_bits,
                        unsigned history_depth);

/** Percent overhead of @p organisation relative to @p baseline. */
double overheadPercent(const StorageBits &baseline,
                       const StorageBits &organisation);

} // namespace adcache

#endif // ADCACHE_CORE_OVERHEAD_HH
