#include "core/overhead.hh"

namespace adcache
{

namespace
{

std::uint64_t
lineCount(const CacheGeometry &geom)
{
    return std::uint64_t(geom.numSets) * geom.assoc;
}

} // namespace

StorageBits
conventionalStorage(const CacheGeometry &geom)
{
    StorageBits s;
    const std::uint64_t lines = lineCount(geom);
    s.dataBits = lines * geom.lineSize * 8;
    s.tagBits = lines * (geom.tagBits() + mainArrayMiscBits);
    return s;
}

StorageBits
adaptiveStorage(const CacheGeometry &geom, unsigned num_policies,
                unsigned partial_tag_bits, unsigned history_depth)
{
    StorageBits s = conventionalStorage(geom);
    const std::uint64_t lines = lineCount(geom);

    const unsigned stored_tag =
        partial_tag_bits == 0 ? geom.tagBits() : partial_tag_bits;
    s.shadowBits = std::uint64_t(num_policies) * lines *
                   (stored_tag + shadowPolicyMetaBits);

    // The main array's own replacement-state bits are subsumed by the
    // component arrays' metadata; avoid double counting (Sec. 3.1).
    s.shadowBits -= lines * mainArrayReplBits;

    s.historyBits = std::uint64_t(geom.numSets) * history_depth;
    return s;
}

StorageBits
sbarStorage(const CacheGeometry &geom, unsigned num_leaders,
            unsigned partial_tag_bits, unsigned history_depth)
{
    StorageBits s = conventionalStorage(geom);
    const unsigned stored_tag =
        partial_tag_bits == 0 ? geom.tagBits() : partial_tag_bits;
    const std::uint64_t leader_lines =
        std::uint64_t(num_leaders) * geom.assoc;
    // One auxiliary tag directory per leader set (Qureshi-style): the
    // main array, which keeps both components' metadata on the real
    // blocks, doubles as the currently-followed component's contents.
    // This matches the paper's 0.16 % figure for 32 full-tag leaders.
    s.shadowBits = leader_lines * (stored_tag + shadowPolicyMetaBits);
    s.historyBits = std::uint64_t(num_leaders) * history_depth;
    return s;
}

double
overheadPercent(const StorageBits &baseline,
                const StorageBits &organisation)
{
    const double base = double(baseline.totalBits());
    if (base == 0.0)
        return 0.0;
    return 100.0 * (double(organisation.totalBits()) - base) / base;
}

} // namespace adcache
