#include "obs/run_meta.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ctime>

extern char **environ;

namespace adcache::obs
{

namespace
{

std::string
isoTimestampUtc()
{
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

const char *
compilerId()
{
#if defined(__clang__)
    return "clang " __clang_version__;
#elif defined(__GNUC__)
    return "gcc " __VERSION__;
#else
    return "unknown";
#endif
}

const char *
buildType()
{
#if defined(ADCACHE_BUILD_TYPE)
    return ADCACHE_BUILD_TYPE;
#elif defined(NDEBUG)
    return "Release";
#else
    return "Debug";
#endif
}

const char *
gitSha()
{
#if defined(ADCACHE_GIT_SHA)
    return ADCACHE_GIT_SHA;
#else
    return "unknown";
#endif
}

std::vector<std::pair<std::string, std::string>>
collect()
{
    std::vector<std::pair<std::string, std::string>> meta;
    meta.emplace_back("run.timestamp", isoTimestampUtc());
    meta.emplace_back("run.git_sha", gitSha());
    meta.emplace_back("run.build_type", buildType());
    meta.emplace_back("run.compiler", compilerId());
#if defined(ADCACHE_TRACE_COMPILED)
    meta.emplace_back("run.trace_compiled", "true");
#else
    meta.emplace_back("run.trace_compiled", "false");
#endif

    std::vector<std::pair<std::string, std::string>> knobs;
    for (char **env = environ; env != nullptr && *env != nullptr;
         ++env) {
        const char *entry = *env;
        if (std::strncmp(entry, "ADCACHE_", 8) != 0)
            continue;
        const char *eq = std::strchr(entry, '=');
        if (eq == nullptr)
            continue;
        knobs.emplace_back(std::string(entry, eq - entry), eq + 1);
    }
    std::sort(knobs.begin(), knobs.end());
    for (auto &[name, value] : knobs)
        meta.emplace_back("run.env." + name, value);
    return meta;
}

} // namespace

const std::vector<std::pair<std::string, std::string>> &
collectRunMeta()
{
    static const auto meta = collect();
    return meta;
}

// appendRunMeta is defined in obs/report_bridge.cc (compiled into
// the sim library) because it touches ReportGrid.

} // namespace adcache::obs
