#include "obs/metrics.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "obs/trace.hh"
#include "util/logging.hh"

namespace adcache::obs
{

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "untyped";
}

namespace detail
{

/**
 * One thread's slot array, grown in fixed chunks. Only the owning
 * thread writes cells; the scrape thread reads them, and discovers
 * freshly-allocated chunks through the release/acquire pair on the
 * chunk pointer. Cells are NOT padded apart: adjacent slots are only
 * ever written by the same thread, so there is no cross-thread false
 * sharing to pad away (distinct shards are distinct allocations).
 */
class MetricsShard
{
  public:
    static constexpr std::uint32_t kChunkSlots = 256;
    static constexpr std::uint32_t kMaxChunks = 64;

    MetricsShard() = default;

    ~MetricsShard()
    {
        for (auto &c : chunks_)
            delete[] c.load(std::memory_order_relaxed);
    }

    MetricsShard(const MetricsShard &) = delete;
    MetricsShard &operator=(const MetricsShard &) = delete;

    /** Owning thread only: the cell for @p slot, allocating its
     *  chunk on first touch. */
    std::atomic<std::uint64_t> &
    cell(std::uint32_t slot)
    {
        const std::uint32_t ci = slot / kChunkSlots;
        adcache_assert(ci < kMaxChunks);
        std::atomic<std::uint64_t> *chunk =
            chunks_[ci].load(std::memory_order_relaxed);
        if (chunk == nullptr) {
            chunk = new std::atomic<std::uint64_t>[kChunkSlots]();
            chunks_[ci].store(chunk, std::memory_order_release);
        }
        return chunk[slot % kChunkSlots];
    }

    /** Any thread: current value of @p slot (0 if never touched). */
    std::uint64_t
    read(std::uint32_t slot) const
    {
        const std::uint32_t ci = slot / kChunkSlots;
        if (ci >= kMaxChunks)
            return 0;
        const std::atomic<std::uint64_t> *chunk =
            chunks_[ci].load(std::memory_order_acquire);
        if (chunk == nullptr)
            return 0;
        return chunk[slot % kChunkSlots].load(
            std::memory_order_relaxed);
    }

  private:
    std::atomic<std::atomic<std::uint64_t> *> chunks_[kMaxChunks] =
        {};
};

} // namespace detail

namespace
{

std::atomic<std::uint64_t> g_nextRegistryId{1};

/**
 * Thread-local shard directory. Keyed by the registry's unique id —
 * never its address — so a test that destroys one registry and
 * creates another at the same address can't alias into stale cells.
 * Entries whose registry died (we hold the only remaining reference)
 * are swept on the next miss, so the directory stays bounded.
 */
struct TlsShardEntry
{
    std::uint64_t id = 0;
    std::shared_ptr<detail::MetricsShard> shard;
};

struct TlsShardCache
{
    std::uint64_t id = 0;
    detail::MetricsShard *shard = nullptr;
};

thread_local TlsShardCache tl_lastShard;
thread_local std::vector<TlsShardEntry> tl_shards;

} // namespace

class MetricsRegistryImpl
{
  public:
    MetricsRegistryImpl()
        : id(g_nextRegistryId.fetch_add(1,
                                        std::memory_order_relaxed))
    {
    }

    detail::Family *
    findOrCreate(MetricKind kind, const std::string &name,
                 const std::string &help,
                 const MetricLabels &labels,
                 std::uint32_t slotsNeeded)
    {
        std::lock_guard<std::mutex> lock(mtx);
        for (auto &f : families)
            if (f->name == name && f->labels == labels) {
                adcache_assert(f->kind == kind);
                return f.get();
            }
        auto f = std::make_unique<detail::Family>();
        f->owner = this;
        f->kind = kind;
        f->name = name;
        f->help = help;
        f->labels = labels;
        f->slot = nextSlot;
        nextSlot += slotsNeeded;
        families.push_back(std::move(f));
        return families.back().get();
    }

    /** The calling thread's shard, creating + registering one on
     *  first use. */
    detail::MetricsShard &
    localShard()
    {
        if (tl_lastShard.id == id && tl_lastShard.shard != nullptr)
            return *tl_lastShard.shard;
        for (auto &e : tl_shards)
            if (e.id == id) {
                tl_lastShard = {id, e.shard.get()};
                return *e.shard;
            }
        // Miss: sweep entries whose registry is gone (TLS holds the
        // only reference once the registry's shard list is freed).
        std::erase_if(tl_shards, [](const TlsShardEntry &e) {
            return e.shard.use_count() == 1;
        });
        auto shard = std::make_shared<detail::MetricsShard>();
        {
            std::lock_guard<std::mutex> lock(mtx);
            shards.push_back(shard);
        }
        tl_shards.push_back({id, shard});
        tl_lastShard = {id, shard.get()};
        return *shard;
    }

    std::uint64_t
    sumSlot(std::uint32_t slot) const
    {
        std::uint64_t total = 0;
        for (const auto &s : shards)
            total += s->read(slot);
        return total;
    }

    const std::uint64_t id;
    mutable std::mutex mtx;
    std::vector<std::unique_ptr<detail::Family>> families;
    std::uint32_t nextSlot = 0;
    std::vector<std::shared_ptr<detail::MetricsShard>> shards;
    std::vector<std::function<void(MetricsSink &)>> collectors;
};

void
Counter::inc(std::uint64_t n)
{
    if (family_ == nullptr)
        return;
    std::atomic<std::uint64_t> &c =
        family_->owner->localShard().cell(family_->slot);
    // Owner-thread-only cell: load+store beats a lock-prefixed RMW.
    c.store(c.load(std::memory_order_relaxed) + n,
            std::memory_order_relaxed);
}

std::uint64_t
Counter::value() const
{
    if (family_ == nullptr)
        return 0;
    MetricsRegistryImpl *impl = family_->owner;
    std::lock_guard<std::mutex> lock(impl->mtx);
    return impl->sumSlot(family_->slot);
}

void
Gauge::set(double v)
{
    if (family_ != nullptr)
        family_->gauge.store(v, std::memory_order_relaxed);
}

double
Gauge::value() const
{
    if (family_ == nullptr)
        return 0.0;
    return family_->gauge.load(std::memory_order_relaxed);
}

void
HistogramHandle::observe(std::uint64_t ns)
{
    if (family_ == nullptr)
        return;
    detail::MetricsShard &shard = family_->owner->localShard();
    const std::uint32_t base = family_->slot;
    auto bump = [&](std::uint32_t slot, std::uint64_t n) {
        std::atomic<std::uint64_t> &c = shard.cell(slot);
        c.store(c.load(std::memory_order_relaxed) + n,
                std::memory_order_relaxed);
    };
    bump(base + histBucketOf(ns), 1);
    bump(base + kHistBuckets + 1, ns); // sum (ns)
}

const MetricSample *
MetricsSnapshot::find(const std::string &name,
                      const std::string &key,
                      const std::string &val) const
{
    for (const MetricSample &s : samples) {
        if (s.name != name)
            continue;
        if (key.empty())
            return &s;
        for (const auto &[k, v] : s.labels)
            if (k == key && v == val)
                return &s;
    }
    return nullptr;
}

double
MetricsSnapshot::percentileNs(const std::string &name,
                              double p) const
{
    const MetricSample *s = find(name);
    if (s == nullptr || s->kind != MetricKind::Histogram ||
        s->count == 0)
        return 0.0;
    const double rank = std::max(1.0, std::ceil(p * s->count));
    std::uint64_t cum = 0;
    for (unsigned b = 0; b < s->buckets.size(); ++b) {
        cum += s->buckets[b];
        if (double(cum) >= rank) {
            if (b >= kHistBuckets) // +Inf: report one past the top
                return double(std::uint64_t(1) << (kHistHiBit + 1));
            return double(std::uint64_t(1) << (kHistLoBit + b));
        }
    }
    return double(std::uint64_t(1) << (kHistHiBit + 1));
}

void
MetricsSink::counter(std::string name, MetricLabels labels,
                     double v, std::string help)
{
    MetricSample s;
    s.name = std::move(name);
    s.help = std::move(help);
    s.kind = MetricKind::Counter;
    s.labels = std::move(labels);
    s.value = v;
    out_->push_back(std::move(s));
}

void
MetricsSink::gauge(std::string name, MetricLabels labels, double v,
                   std::string help)
{
    MetricSample s;
    s.name = std::move(name);
    s.help = std::move(help);
    s.kind = MetricKind::Gauge;
    s.labels = std::move(labels);
    s.value = v;
    out_->push_back(std::move(s));
}

MetricsRegistry::MetricsRegistry()
    : impl_(std::make_unique<MetricsRegistryImpl>())
{
}

MetricsRegistry::~MetricsRegistry() = default;

Counter
MetricsRegistry::counter(const std::string &name,
                         const std::string &help,
                         const MetricLabels &labels)
{
    return Counter(impl_->findOrCreate(MetricKind::Counter, name,
                                       help, labels, 1));
}

Gauge
MetricsRegistry::gauge(const std::string &name,
                       const std::string &help,
                       const MetricLabels &labels)
{
    // Gauges live in the Family's own atomic, no shard slot.
    return Gauge(impl_->findOrCreate(MetricKind::Gauge, name, help,
                                     labels, 0));
}

HistogramHandle
MetricsRegistry::histogram(const std::string &name,
                           const std::string &help,
                           const MetricLabels &labels)
{
    return HistogramHandle(
        impl_->findOrCreate(MetricKind::Histogram, name, help,
                            labels, kHistBuckets + 2));
}

void
MetricsRegistry::addCollector(std::function<void(MetricsSink &)> fn)
{
    std::lock_guard<std::mutex> lock(impl_->mtx);
    impl_->collectors.push_back(std::move(fn));
}

MetricsSnapshot
MetricsRegistry::scrape() const
{
    MetricsSnapshot snap;
    std::vector<std::function<void(MetricsSink &)>> collectors;
    {
        std::lock_guard<std::mutex> lock(impl_->mtx);
        for (const auto &f : impl_->families) {
            MetricSample s;
            s.name = f->name;
            s.help = f->help;
            s.kind = f->kind;
            s.labels = f->labels;
            switch (f->kind) {
              case MetricKind::Counter:
                s.value = double(impl_->sumSlot(f->slot));
                break;
              case MetricKind::Gauge:
                s.value = f->gauge.load(std::memory_order_relaxed);
                break;
              case MetricKind::Histogram: {
                s.buckets.resize(kHistBuckets + 1);
                s.count = 0;
                for (unsigned b = 0; b <= kHistBuckets; ++b) {
                    s.buckets[b] = impl_->sumSlot(f->slot + b);
                    s.count += s.buckets[b];
                }
                s.sum = double(
                    impl_->sumSlot(f->slot + kHistBuckets + 1));
                break;
              }
            }
            snap.samples.push_back(std::move(s));
        }
        collectors = impl_->collectors;
    }
    // Collectors run outside the registry lock: they may grab
    // component locks (shard mutexes) that themselves protect code
    // holding metric handles.
    MetricsSink sink(&snap.samples);
    for (const auto &fn : collectors)
        fn(sink);
    return snap;
}

std::size_t
MetricsRegistry::familyCount() const
{
    std::lock_guard<std::mutex> lock(impl_->mtx);
    return impl_->families.size();
}

namespace
{

void
appendEscaped(std::string &out, const std::string &s,
              bool escapeQuote)
{
    for (char c : s) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '"':
            if (escapeQuote) {
                out += "\\\"";
                break;
            }
            [[fallthrough]];
          default:
            out += c;
        }
    }
}

void
appendLabels(std::string &out, const MetricLabels &labels)
{
    if (labels.empty())
        return;
    out += '{';
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            out += ',';
        first = false;
        out += k;
        out += "=\"";
        appendEscaped(out, v, /*escapeQuote=*/true);
        out += '"';
    }
    out += '}';
}

/** One extra label appended to a family's set (for le="..."). */
void
appendLabelsPlus(std::string &out, const MetricLabels &labels,
                 const std::string &key, const std::string &val)
{
    out += '{';
    for (const auto &[k, v] : labels) {
        out += k;
        out += "=\"";
        appendEscaped(out, v, /*escapeQuote=*/true);
        out += "\",";
    }
    out += key;
    out += "=\"";
    appendEscaped(out, val, /*escapeQuote=*/true);
    out += "\"}";
}

void
appendValue(std::string &out, double v)
{
    char buf[64];
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        std::snprintf(buf, sizeof buf, "%.0f", v);
    else
        std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

} // namespace

std::string
renderPrometheus(const MetricsSnapshot &snap)
{
    std::string out;
    out.reserve(snap.samples.size() * 64);
    // HELP/TYPE are emitted once per family name, at its first
    // occurrence; later samples of the same name (other label sets)
    // print bare. Registration order is preserved throughout.
    std::vector<std::string> announced;
    auto announce = [&](const MetricSample &s) {
        if (std::find(announced.begin(), announced.end(), s.name) !=
            announced.end())
            return;
        announced.push_back(s.name);
        if (!s.help.empty()) {
            out += "# HELP ";
            out += s.name;
            out += ' ';
            appendEscaped(out, s.help, /*escapeQuote=*/false);
            out += '\n';
        }
        out += "# TYPE ";
        out += s.name;
        out += ' ';
        out += metricKindName(s.kind);
        out += '\n';
    };

    for (const MetricSample &s : snap.samples) {
        announce(s);
        if (s.kind != MetricKind::Histogram) {
            out += s.name;
            appendLabels(out, s.labels);
            out += ' ';
            appendValue(out, s.value);
            out += '\n';
            continue;
        }
        std::uint64_t cum = 0;
        for (unsigned b = 0; b < s.buckets.size(); ++b) {
            cum += s.buckets[b];
            out += s.name;
            out += "_bucket";
            std::string le;
            if (b >= kHistBuckets) {
                le = "+Inf";
            } else {
                char buf[32];
                std::snprintf(buf, sizeof buf, "%" PRIu64,
                              std::uint64_t(1)
                                  << (kHistLoBit + b));
                le = buf;
            }
            appendLabelsPlus(out, s.labels, "le", le);
            out += ' ';
            appendValue(out, double(cum));
            out += '\n';
        }
        out += s.name;
        out += "_sum";
        appendLabels(out, s.labels);
        out += ' ';
        appendValue(out, s.sum);
        out += '\n';
        out += s.name;
        out += "_count";
        appendLabels(out, s.labels);
        out += ' ';
        appendValue(out, double(s.count));
        out += '\n';
    }
    return out;
}

void
registerTraceMetrics(MetricsRegistry &reg)
{
    reg.addCollector([](MetricsSink &sink) {
        sink.gauge("adcache_trace_compiled", {},
                   kTraceCompiled ? 1.0 : 0.0,
                   "Whether ADCACHE_TRACE instrumentation is "
                   "compiled in");
        sink.gauge("adcache_trace_enabled", {},
                   traceEnabled() ? 1.0 : 0.0,
                   "Whether decision-event tracing is live");
        const std::vector<std::uint64_t> drops = perRingDrops();
        for (std::size_t i = 0; i < drops.size(); ++i)
            sink.counter("adcache_trace_dropped_total",
                         {{"ring", std::to_string(i)}},
                         double(drops[i]),
                         "Trace events dropped per ring since the "
                         "last reset");
    });
}

namespace
{

__attribute__((noinline)) void
counterCostSink(std::uint64_t v)
{
    asm volatile("" : : "r"(v) : "memory");
}

} // namespace

double
measureCounterCostNs(MetricsRegistry &reg)
{
    // Same paired-loop shape as measureGateCostNs: a serial
    // dependency chain keeps both loops honest, and the difference
    // is the marginal cost of one attached Counter::inc.
    Counter c = reg.counter("adcache_bench_inc_total",
                            "counter-cost measurement scratch");
    c.inc(); // fault in the TLS shard + chunk before timing

    constexpr int kIters = 1 << 18;
    constexpr int kReps = 7;

    auto timeLoop = [](auto body) {
        double best = 1e18;
        for (int rep = 0; rep < kReps; ++rep) {
            const std::uint64_t t0 = nowNs();
            std::uint64_t acc = 1;
            for (int i = 0; i < kIters; ++i)
                acc = body(acc, i);
            counterCostSink(acc);
            const std::uint64_t t1 = nowNs();
            best = std::min(best, double(t1 - t0));
        }
        return best / kIters;
    };

    const double plain =
        timeLoop([](std::uint64_t acc, int i) -> std::uint64_t {
            return acc * 2654435761u + unsigned(i);
        });
    const double counted =
        timeLoop([&](std::uint64_t acc, int i) -> std::uint64_t {
            c.inc();
            return acc * 2654435761u + unsigned(i);
        });
    return std::max(0.0, counted - plain);
}

} // namespace adcache::obs
