/**
 * @file
 * Self-describing run metadata: git SHA, build type, compiler,
 * every ADCACHE_* environment knob, and an ISO-8601 timestamp.
 * Injected into every sim/report JSON/CSV artifact (keys prefixed
 * "run.") so a result file alone identifies the build and
 * configuration that produced it.
 */

#ifndef ADCACHE_OBS_RUN_META_HH
#define ADCACHE_OBS_RUN_META_HH

#include <string>
#include <utility>
#include <vector>

namespace adcache
{
struct ReportGrid;
}

namespace adcache::obs
{

/**
 * The process's run metadata, collected once and cached. Keys are
 * "run.timestamp", "run.git_sha", "run.build_type", "run.compiler",
 * "run.trace_compiled", and one "run.env.<NAME>" per ADCACHE_*
 * environment variable (sorted by name).
 */
const std::vector<std::pair<std::string, std::string>> &
collectRunMeta();

/**
 * Append collectRunMeta() pairs to @p grid's metadata, skipping any
 * key the grid already carries.
 */
void appendRunMeta(ReportGrid &grid);

} // namespace adcache::obs

#endif // ADCACHE_OBS_RUN_META_HH
