/**
 * @file
 * Env-driven observability session for bench/example binaries. One
 * Session at the top of main() reads the ADCACHE_* observability
 * knobs, arms the runtime gates, and on finish() drains and exports
 * everything that was collected:
 *
 *   ADCACHE_TRACE=1            enable decision-event tracing
 *   ADCACHE_TRACE_OUT=f.jsonl  write the JSONL event stream here
 *                              (implies ADCACHE_TRACE=1)
 *   ADCACHE_TRACE_CHROME=f.json  write job spans as a Chrome
 *                              trace_event file (implies tracing)
 *   ADCACHE_SERIES_OUT=f.csv   write the bench's snapshot series CSV
 *   ADCACHE_SERIES_EVERY=N     snapshot cadence in ticks
 *   ADCACHE_LAT=1              enable kv latency sampling
 *
 * Status notes go to stderr so stdout report output stays
 * parseable. All knobs default to off: a bench run with no
 * ADCACHE_* observability vars behaves exactly as before.
 *
 * This class is compiled into the sim library (it renders report
 * CSVs); see obs/report_bridge.cc for the layering note.
 */

#ifndef ADCACHE_OBS_SESSION_HH
#define ADCACHE_OBS_SESSION_HH

#include <cstdint>
#include <string>

namespace adcache
{
struct ReportGrid;
}

namespace adcache::obs
{

class Session
{
  public:
    /**
     * @param name experiment name, recorded in export headers.
     *
     * The first live Session in the process is the primary one; any
     * Session constructed while it is live is inert (no gate arming,
     * no export), so the harness can scope a Session inside
     * runAndReport() while a driver holds its own across main().
     */
    explicit Session(std::string name);

    /** Calls finish(). */
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** Tracing was requested (and is compiled in). */
    bool tracing() const { return tracing_; }

    /** A snapshot-series CSV destination was requested. */
    bool seriesRequested() const { return !seriesOut_.empty(); }

    /** ADCACHE_SERIES_EVERY, or @p fallback when unset/invalid. */
    static std::uint64_t seriesInterval(std::uint64_t fallback);

    /**
     * Render @p grid as CSV (run metadata included) into
     * ADCACHE_SERIES_OUT. No-op when no destination was requested.
     */
    void writeSeries(const ReportGrid &grid) const;

    /**
     * Drain and export: JSONL events to ADCACHE_TRACE_OUT, spans to
     * ADCACHE_TRACE_CHROME, then disarm the gates. Idempotent.
     */
    void finish();

  private:
    std::string name_;
    std::string traceOut_;
    std::string chromeOut_;
    std::string seriesOut_;
    bool primary_ = false;
    bool tracing_ = false;
    bool latency_ = false;
    bool finished_ = false;
};

} // namespace adcache::obs

#endif // ADCACHE_OBS_SESSION_HH
