#include "obs/export.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace adcache::obs
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              unsigned(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

std::string
hex(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "\"0x%" PRIx64 "\"", v);
    return buf;
}

void
appendEvent(std::ostringstream &out, const TraceEvent &ev)
{
    out << "{\"kind\":\"" << eventKindName(ev.kind)
        << "\",\"t\":" << ev.t;
    const unsigned hi = ev.b >> 8;
    const unsigned lo = ev.b & 0xFF;
    switch (ev.kind) {
      case EventKind::DiffMiss:
        out << ",\"set\":" << ev.a << ",\"miss_mask\":" << ev.b;
        break;
      case EventKind::WinnerFlip:
        out << ",\"set\":" << ev.a << ",\"from\":" << hi
            << ",\"to\":" << lo;
        break;
      case EventKind::Eviction:
        out << ",\"set\":" << ev.a << ",\"winner\":" << hi
            << ",\"case\":\"" << evictCaseName(EvictCase(lo))
            << "\",\"victim_tag\":" << hex(ev.addr);
        break;
      case EventKind::ShadowEvict:
        out << ",\"set\":" << ev.a << ",\"component\":" << ev.b
            << ",\"victim_tag\":" << hex(ev.addr);
        break;
      case EventKind::SbarPselCross:
        out << ",\"psel\":" << ev.a << ",\"from\":" << hi
            << ",\"to\":" << lo;
        break;
      case EventKind::KvEviction:
        out << ",\"shard\":" << ev.a << ",\"winner\":" << hi
            << ",\"case\":\"" << evictCaseName(EvictCase(lo))
            << "\",\"key\":" << hex(ev.addr);
        break;
      case EventKind::KvWinnerFlip:
        out << ",\"shard\":" << ev.a << ",\"from\":" << hi
            << ",\"to\":" << lo;
        break;
      case EventKind::KvAdmitReject:
        out << ",\"shard\":" << ev.a << ",\"winner\":" << ev.b
            << ",\"key\":" << hex(ev.addr);
        break;
      case EventKind::KvReadRetry:
        out << ",\"shard\":" << ev.a << ",\"retries\":" << ev.b
            << ",\"key\":" << hex(ev.addr);
        break;
      case EventKind::KvDrift:
        out << ",\"shard\":" << ev.a << ",\"signal\":\""
            << driftSignalName(DriftSignal(lo))
            << "\",\"ewma_ppm\":" << ev.addr;
        break;
    }
    out << "}\n";
}

} // namespace

std::string
eventsToJsonl(const std::vector<TraceEvent> &events,
              const MetaPairs &meta, std::uint64_t dropped)
{
    std::ostringstream out;
    out << "{\"kind\":\"header\",\"events\":" << events.size()
        << ",\"dropped\":" << dropped;
    for (const auto &[key, value] : meta)
        out << ",\"" << jsonEscape(key) << "\":\""
            << jsonEscape(value) << "\"";
    out << "}\n";
    for (const TraceEvent &ev : events)
        appendEvent(out, ev);
    return out.str();
}

std::string
spansToChromeTrace(const std::vector<Span> &spans)
{
    std::uint64_t origin = 0;
    if (!spans.empty()) {
        origin = spans.front().t0Ns;
        for (const Span &s : spans)
            origin = std::min(origin, s.t0Ns);
    }

    auto micros = [](std::uint64_t ns) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u",
                      ns / 1000, unsigned(ns % 1000));
        return std::string(buf);
    };

    std::ostringstream out;
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const Span &s : spans) {
        if (!first)
            out << ",";
        first = false;
        out << "\n{\"name\":\"" << jsonEscape(s.name)
            << "\",\"cat\":\"job\",\"ph\":\"X\",\"ts\":"
            << micros(s.t0Ns - origin)
            << ",\"dur\":" << micros(s.t1Ns - s.t0Ns)
            << ",\"pid\":1,\"tid\":" << s.tid << "}";
    }
    out << "\n]}\n";
    return out.str();
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        warn("obs: cannot open '%s' for writing", path.c_str());
        return false;
    }
    const std::size_t n =
        std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    if (n != content.size()) {
        warn("obs: short write to '%s'", path.c_str());
        return false;
    }
    return true;
}

} // namespace adcache::obs
