/**
 * @file
 * Lock-free single-producer / single-consumer bounded ring buffer of
 * TraceEvents. One ring is owned per producing thread (obs/trace.cc
 * hands them out via a thread-local cache); the draining thread is
 * the single consumer. When the ring is full events are *dropped and
 * counted*, never overwritten — a trace with a known hole is more
 * honest than one with a silently rewritten past.
 */

#ifndef ADCACHE_OBS_RING_HH
#define ADCACHE_OBS_RING_HH

#include <atomic>
#include <cstddef>
#include <vector>

#include "obs/event.hh"

namespace adcache::obs
{

/**
 * SPSC bounded queue. Capacity is rounded up to a power of two so
 * index wrap is a mask. `tryPush` may only be called from the owning
 * producer thread; `drain` from one consumer at a time.
 */
class EventRing
{
  public:
    /** @param capacity minimum usable slots (rounded up to 2^k). */
    explicit EventRing(std::size_t capacity);

    /**
     * Producer side: append one event. Returns false (and counts a
     * drop) when the ring is full.
     */
    bool
    tryPush(const TraceEvent &ev)
    {
        const std::size_t head =
            head_.load(std::memory_order_relaxed);
        const std::size_t tail =
            tail_.load(std::memory_order_acquire);
        if (head - tail >= slots_.size()) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        slots_[head & mask_] = ev;
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /**
     * Consumer side: move every currently visible event into @p out
     * (appending) and free the slots. Returns how many were moved.
     */
    std::size_t drain(std::vector<TraceEvent> &out);

    /** Events rejected because the ring was full. */
    std::uint64_t
    dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Usable capacity after power-of-two rounding. */
    std::size_t capacity() const { return slots_.size(); }

    /** Events currently buffered (racy if the producer is live). */
    std::size_t
    size() const
    {
        return head_.load(std::memory_order_acquire) -
               tail_.load(std::memory_order_acquire);
    }

  private:
    std::vector<TraceEvent> slots_;
    std::size_t mask_;
    std::atomic<std::size_t> head_{0}; // next write (producer-owned)
    std::atomic<std::size_t> tail_{0}; // next read (consumer-owned)
    std::atomic<std::uint64_t> dropped_{0};
};

} // namespace adcache::obs

#endif // ADCACHE_OBS_RING_HH
