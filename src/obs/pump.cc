#include "obs/pump.hh"

#include <cstdio>

#include "obs/trace.hh"

namespace adcache::obs
{

TelemetryPump::TelemetryPump(TelemetryPumpConfig config)
    : config_(std::move(config)), monitor_(config_.drift)
{
    if (config_.sampler) {
        const std::uint64_t every =
            config_.snapshotEvery > 0 ? config_.snapshotEvery : 1;
        series_ = std::make_unique<SnapshotSeries>(
            every, config_.sampler);
    }
    if (!config_.logSink)
        config_.logSink = [](const std::string &line) {
            std::fprintf(stderr, "%s\n", line.c_str());
        };
    if (config_.metrics != nullptr)
        driftCounter_ = config_.metrics->counter(
            "adcache_kv_drift_events_total",
            "Adaptation-drift threshold crossings (both signals)");
}

TelemetryPump::~TelemetryPump() { stop(); }

void
TelemetryPump::start()
{
    std::lock_guard<std::mutex> lock(mtx_);
    if (running_)
        return;
    stopRequested_ = false;
    running_ = true;
    thread_ = std::thread([this] { run(); });
}

void
TelemetryPump::stop()
{
    {
        std::lock_guard<std::mutex> lock(mtx_);
        if (!running_)
            return;
        stopRequested_ = true;
    }
    cv_.notify_all();
    thread_.join();
    std::lock_guard<std::mutex> lock(mtx_);
    running_ = false;
}

void
TelemetryPump::run()
{
    std::unique_lock<std::mutex> lock(mtx_);
    while (!stopRequested_) {
        if (cv_.wait_for(lock, config_.period,
                         [this] { return stopRequested_; }))
            break;
        lock.unlock();
        tickOnce();
        lock.lock();
    }
}

void
TelemetryPump::publishGauges(std::size_t shard,
                             const DriftVerdict &v)
{
    if (config_.metrics == nullptr)
        return;
    while (flipGauges_.size() <= shard) {
        const MetricLabels labels = {
            {"shard", std::to_string(flipGauges_.size())}};
        flipGauges_.push_back(config_.metrics->gauge(
            "adcache_kv_drift_flip_ewma",
            "EWMA of per-op winner-flip rate", labels));
        diffMissGauges_.push_back(config_.metrics->gauge(
            "adcache_kv_drift_diffmiss_ewma",
            "EWMA of per-op differentiating-miss rate", labels));
    }
    flipGauges_[shard].set(v.flipEwma);
    diffMissGauges_[shard].set(v.diffMissEwma);
}

void
TelemetryPump::tickOnce()
{
    std::uint64_t period;
    {
        std::lock_guard<std::mutex> lock(mtx_);
        period = ++periods_;
    }
    if (series_)
        series_->tick(period);
    if (!config_.driftSampler)
        return;

    const std::vector<DriftShardSample> cur = config_.driftSampler();
    if (prev_.size() < cur.size())
        prev_.resize(cur.size());

    auto delta = [](std::uint64_t now, std::uint64_t then) {
        return now >= then ? now - then : 0;
    };
    for (std::size_t s = 0; s < cur.size(); ++s) {
        const std::uint64_t flips = delta(cur[s].flips,
                                          prev_[s].flips);
        const std::uint64_t dm =
            delta(cur[s].diffMisses, prev_[s].diffMisses);
        const std::uint64_t ops = delta(cur[s].ops, prev_[s].ops);
        const DriftVerdict v = monitor_.sample(s, flips, dm, ops);
        publishGauges(s, v);

        auto fire = [&](DriftSignal sig, double ewma,
                        double threshold) {
            const auto ppm = std::uint64_t(ewma * 1e6);
            if (traceEnabled())
                emit(kvDriftEvent(cur[s].ops, unsigned(s), sig,
                                  ppm));
            char line[192];
            std::snprintf(
                line, sizeof line,
                "kv_drift shard=%zu signal=%s ewma_ppm=%llu "
                "threshold_ppm=%llu period=%llu ops=%llu",
                s, driftSignalName(sig),
                (unsigned long long)ppm,
                (unsigned long long)(threshold * 1e6),
                (unsigned long long)period,
                (unsigned long long)cur[s].ops);
            config_.logSink(line);
            driftCounter_.inc();
            std::lock_guard<std::mutex> lock(mtx_);
            ++driftEvents_;
        };
        if (v.flipDrift)
            fire(DriftSignal::WinnerFlips, v.flipEwma,
                 monitor_.config().flipRateThreshold);
        if (v.diffMissDrift)
            fire(DriftSignal::DiffMisses, v.diffMissEwma,
                 monitor_.config().diffMissRateThreshold);
    }
    prev_ = cur;
}

std::uint64_t
TelemetryPump::periods() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return periods_;
}

std::uint64_t
TelemetryPump::driftEvents() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return driftEvents_;
}

} // namespace adcache::obs
