/**
 * @file
 * Periodic snapshot engine: samples every registered stat on an
 * access-count cadence into time-series rows, so a bench can emit
 * per-interval MPKI / winner-share / fallback-rate curves (a
 * machine-readable Fig. 7 phase map) without bespoke plumbing.
 *
 * The engine is clock-agnostic: "time" is whatever monotone counter
 * the caller passes to tick() — instructions retired, cache
 * accesses, kv references. Rows fire at exact multiples of the
 * interval regardless of how coarsely tick() is called, so cadences
 * are comparable across runs with different chunk sizes.
 */

#ifndef ADCACHE_OBS_SNAPSHOT_HH
#define ADCACHE_OBS_SNAPSHOT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/stat_registry.hh"

namespace adcache
{
struct ReportGrid;
}

namespace adcache::obs
{

/**
 * Accumulates time-series rows by invoking a sampler callback at
 * interval boundaries. The sampler re-registers current counter
 * values into a fresh StatRegistry per row; appendTo() then emits
 * per-interval deltas plus any registered derived columns.
 */
class SnapshotSeries
{
  public:
    /** Fills @p reg with the current value of every sampled stat. */
    using Sampler = std::function<void(StatRegistry &reg)>;

    /**
     * Derived per-interval column: computed from the row's sampled
     * registry, the previous row's (nullptr for the first row), and
     * the interval length @p dt in ticks.
     */
    using Derive = std::function<double(
        const StatRegistry &cur, const StatRegistry *prev,
        std::uint64_t dt)>;

    /** One fired snapshot. */
    struct Row
    {
        std::uint64_t index = 0; //!< 0-based row number
        std::uint64_t at = 0;    //!< tick count the row covers up to
        bool partial = false;    //!< finish() tail, shorter interval
        StatRegistry stats;
    };

    /**
     * @param interval cadence in ticks (> 0).
     * @param sampler  invoked once per fired row.
     */
    SnapshotSeries(std::uint64_t interval, Sampler sampler);

    /**
     * Advance logical time to @p now, firing one row per interval
     * boundary crossed (each row samples *at the boundary*, i.e.
     * immediately after the caller simulated up to at least that
     * many ticks).
     */
    void tick(std::uint64_t now);

    /** Fire a final partial row covering (last boundary, now]. */
    void finish(std::uint64_t now);

    /** Register a derived column (applied in appendTo). */
    void derive(std::string name, Derive fn);

    /** Δcounter(name) × @p scale / Δticks — e.g. per-interval MPKI
     *  is `rate("l2.misses", 1000.0)` over an instruction clock. */
    static Derive rate(std::string counter, double scale);

    /** Δnumerator / Δdenominator (0 when the denominator is flat) —
     *  e.g. winner share is decisions_a over total decisions. */
    static Derive share(std::string numerator,
                        std::string denominator);

    const std::vector<Row> &rows() const { return rows_; }
    std::uint64_t interval() const { return interval_; }

    /**
     * Append one ReportRow per snapshot to @p grid: benchmark column
     * = interval-end tick, variant = @p label, stats = per-interval
     * counter deltas (named "d_<stat>"), sampled Value/Text entries
     * verbatim, then derived columns. Sets the grid's benchmark
     * header to "interval_end".
     */
    void appendTo(ReportGrid &grid, const std::string &label) const;

  private:
    void fire(std::uint64_t at, bool partial);

    std::uint64_t interval_;
    std::uint64_t next_;
    Sampler sampler_;
    std::vector<Row> rows_;
    std::vector<std::pair<std::string, Derive>> derived_;
};

} // namespace adcache::obs

#endif // ADCACHE_OBS_SNAPSHOT_HH
