#include "obs/latency.hh"

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "util/logging.hh"
#include "util/stat_registry.hh"

namespace adcache::obs
{

const char *
kvOpName(KvOp op)
{
    switch (op) {
      case KvOp::Get:
        return "get";
      case KvOp::Fetch:
        return "fetch";
      case KvOp::Put:
        return "put";
      case KvOp::GetSlow:
        return "get_slow";
      case KvOp::GetMany:
        return "get_many";
    }
    return "?";
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = other.min_ < min_ ? other.min_ : min_;
        max_ = other.max_ > max_ ? other.max_ : max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
    buckets_.merge(other.buckets_);
}

std::uint64_t
LatencyHistogram::minNs() const
{
    adcache_assert(count_ > 0);
    return min_;
}

std::uint64_t
LatencyHistogram::maxNs() const
{
    adcache_assert(count_ > 0);
    return max_;
}

double
LatencyHistogram::meanNs() const
{
    return count_ == 0 ? 0.0 : double(sum_) / double(count_);
}

double
LatencyHistogram::percentileNs(double p) const
{
    adcache_assert(count_ > 0);
    return buckets_.percentile(p);
}

void
LatencyHistogram::registerInto(StatRegistry &reg,
                               const std::string &prefix) const
{
    if (count_ == 0)
        return;
    reg.counter(prefix + "count", count_);
    reg.value(prefix + "mean_ns", meanNs());
    reg.value(prefix + "p50_ns", percentileNs(0.50));
    reg.value(prefix + "p95_ns", percentileNs(0.95));
    reg.value(prefix + "p99_ns", percentileNs(0.99));
    reg.value(prefix + "p999_ns", percentileNs(0.999));
    reg.counter(prefix + "max_ns", maxNs());
}

namespace
{

using LatencyTable = std::array<LatencyHistogram, kNumKvOps>;

/** Same shared_ptr + epoch pattern as the event rings (trace.cc):
 *  tables outlive pool threads; a reset re-attaches lazily. */
struct LatencyState
{
    std::mutex mtx;
    std::vector<std::shared_ptr<LatencyTable>> tables;
    std::atomic<std::uint64_t> epoch{1};
};

LatencyState &
state()
{
    static LatencyState s;
    return s;
}

struct ThreadTableCache
{
    std::uint64_t epoch = 0;
    LatencyTable *table = nullptr;
};

thread_local ThreadTableCache tl_table;

LatencyTable &
threadTable()
{
    LatencyState &s = state();
    const std::uint64_t epoch =
        s.epoch.load(std::memory_order_acquire);
    if (tl_table.epoch != epoch || tl_table.table == nullptr) {
        auto table = std::make_shared<LatencyTable>();
        {
            std::lock_guard<std::mutex> lock(s.mtx);
            s.tables.push_back(table);
        }
        tl_table.table = table.get();
        tl_table.epoch = epoch;
    }
    return *tl_table.table;
}

} // namespace

void
recordLatency(KvOp op, std::uint64_t ns)
{
    threadTable()[unsigned(op)].add(ns);
}

LatencyHistogram
latencySnapshot(KvOp op)
{
    LatencyState &s = state();
    LatencyHistogram merged;
    std::lock_guard<std::mutex> lock(s.mtx);
    for (auto &table : s.tables)
        merged.merge((*table)[unsigned(op)]);
    return merged;
}

void
resetLatency()
{
    LatencyState &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    s.tables.clear();
    s.epoch.fetch_add(1, std::memory_order_acq_rel);
}

} // namespace adcache::obs
