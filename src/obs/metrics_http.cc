#include "obs/metrics_http.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <memory>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

namespace adcache::obs
{

namespace
{

constexpr std::size_t kMaxRequestBytes = 8 * 1024;

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
           ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

/** One accepted connection: buffered request until the blank line,
 *  then a fully-built response drained by the poll loop. */
struct HttpConn
{
    int fd = -1;
    std::string in;
    std::string out;
    std::size_t sent = 0;
    bool responding = false;
};

std::string
httpResponse(int status, const char *reason,
             const char *contentType, const std::string &body)
{
    std::string r = "HTTP/1.0 ";
    r += std::to_string(status);
    r += ' ';
    r += reason;
    r += "\r\nContent-Type: ";
    r += contentType;
    r += "\r\nContent-Length: ";
    r += std::to_string(body.size());
    r += "\r\nConnection: close\r\n\r\n";
    r += body;
    return r;
}

/** Request line target, or empty if the request is not a GET. */
std::string
parseGetTarget(const std::string &request)
{
    if (request.rfind("GET ", 0) != 0)
        return "";
    const std::size_t sp = request.find(' ', 4);
    if (sp == std::string::npos)
        return "";
    return request.substr(4, sp - 4);
}

} // namespace

MetricsHttpServer::MetricsHttpServer(MetricsRegistry &registry,
                                     MetricsHttpConfig config)
    : registry_(registry), config_(std::move(config))
{
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

bool
MetricsHttpServer::start()
{
    if (running_.load(std::memory_order_seq_cst))
        return true;
    stopping_.store(false, std::memory_order_seq_cst);

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        lastError_ = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(),
                    &addr.sin_addr) != 1) {
        lastError_ = "bad host address: " + config_.host;
        closeFd(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        lastError_ = std::string("bind: ") + std::strerror(errno);
        closeFd(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::listen(listenFd_, 16) != 0) {
        lastError_ = std::string("listen: ") + std::strerror(errno);
        closeFd(listenFd_);
        listenFd_ = -1;
        return false;
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof bound;
    if (::getsockname(listenFd_,
                      reinterpret_cast<sockaddr *>(&bound),
                      &blen) == 0)
        port_ = ntohs(bound.sin_port);
    setNonBlocking(listenFd_);

    int pipefd[2];
    if (::pipe(pipefd) != 0) {
        lastError_ = std::string("pipe: ") + std::strerror(errno);
        closeFd(listenFd_);
        listenFd_ = -1;
        return false;
    }
    wakeRead_ = pipefd[0];
    wakeWrite_ = pipefd[1];
    setNonBlocking(wakeRead_);

    running_.store(true, std::memory_order_seq_cst);
    thread_ = std::thread([this] { loop(); });
    return true;
}

void
MetricsHttpServer::stop()
{
    if (!running_.load(std::memory_order_seq_cst))
        return;
    stopping_.store(true, std::memory_order_seq_cst);
    const char b = 1;
    [[maybe_unused]] ssize_t n = ::write(wakeWrite_, &b, 1);
    thread_.join();
    closeFd(listenFd_);
    closeFd(wakeRead_);
    closeFd(wakeWrite_);
    listenFd_ = wakeRead_ = wakeWrite_ = -1;
    running_.store(false, std::memory_order_seq_cst);
}

std::uint64_t
MetricsHttpServer::requestsServed() const
{
    return requests_.load(std::memory_order_seq_cst);
}

void
MetricsHttpServer::loop()
{
    std::vector<std::unique_ptr<HttpConn>> conns;
    std::vector<pollfd> pfds;

    while (!stopping_.load(std::memory_order_seq_cst)) {
        pfds.clear();
        pfds.push_back({listenFd_, POLLIN, 0});
        pfds.push_back({wakeRead_, POLLIN, 0});
        for (const auto &c : conns)
            pfds.push_back(
                {c->fd,
                 short(c->responding ? POLLOUT : POLLIN), 0});

        const int rc = ::poll(pfds.data(), nfds_t(pfds.size()), -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }

        if (pfds[1].revents & POLLIN) {
            char buf[64];
            while (::read(wakeRead_, buf, sizeof buf) > 0) {
            }
        }

        if (pfds[0].revents & POLLIN) {
            for (;;) {
                const int fd = ::accept(listenFd_, nullptr, nullptr);
                if (fd < 0)
                    break;
                setNonBlocking(fd);
                auto c = std::make_unique<HttpConn>();
                c->fd = fd;
                conns.push_back(std::move(c));
            }
        }

        for (std::size_t i = 0; i < conns.size();) {
            HttpConn &c = *conns[i];
            // The pollfd for conns[i] sits at i + 2, but conns may
            // have grown after poll(): skip fds poll never saw.
            const std::size_t pi = i + 2;
            const short revents =
                pi < pfds.size() && pfds[pi].fd == c.fd
                    ? pfds[pi].revents
                    : 0;
            bool dead = (revents & (POLLERR | POLLHUP)) != 0 &&
                        !c.responding;

            if (!dead && !c.responding && (revents & POLLIN)) {
                char buf[4096];
                for (;;) {
                    const ssize_t n = ::read(c.fd, buf, sizeof buf);
                    if (n > 0) {
                        c.in.append(buf, std::size_t(n));
                        continue;
                    }
                    if (n == 0)
                        dead = true; // EOF before a full request
                    break;
                }
                std::string body;
                if (c.in.find("\r\n\r\n") != std::string::npos ||
                    c.in.find("\n\n") != std::string::npos) {
                    requests_.fetch_add(
                        1, std::memory_order_relaxed);
                    const std::string target = parseGetTarget(c.in);
                    if (target == "/metrics" ||
                        target.rfind("/metrics?", 0) == 0) {
                        c.out = httpResponse(
                            200, "OK",
                            "text/plain; version=0.0.4; "
                            "charset=utf-8",
                            renderPrometheus(registry_.scrape()));
                    } else if (target == "/healthz") {
                        c.out = httpResponse(200, "OK",
                                             "text/plain", "ok\n");
                    } else if (target.empty()) {
                        c.out = httpResponse(
                            400, "Bad Request", "text/plain",
                            "only GET is supported\n");
                    } else {
                        c.out = httpResponse(404, "Not Found",
                                             "text/plain",
                                             "not found\n");
                    }
                    c.responding = true;
                    dead = false;
                } else if (c.in.size() > kMaxRequestBytes) {
                    requests_.fetch_add(
                        1, std::memory_order_relaxed);
                    c.out = httpResponse(400, "Bad Request",
                                         "text/plain",
                                         "request too large\n");
                    c.responding = true;
                    dead = false;
                }
            }

            if (!dead && c.responding &&
                (revents & (POLLOUT | POLLERR | POLLHUP))) {
                while (c.sent < c.out.size()) {
                    const ssize_t n =
                        ::send(c.fd, c.out.data() + c.sent,
                               c.out.size() - c.sent, MSG_NOSIGNAL);
                    if (n > 0) {
                        c.sent += std::size_t(n);
                        continue;
                    }
                    if (n < 0 &&
                        (errno == EAGAIN || errno == EWOULDBLOCK))
                        break;
                    dead = true;
                    break;
                }
                if (c.sent == c.out.size())
                    dead = true; // response done: close
            }

            if (dead) {
                closeFd(c.fd);
                conns.erase(conns.begin() + long(i));
            } else {
                ++i;
            }
        }
    }

    for (const auto &c : conns)
        closeFd(c->fd);
}

} // namespace adcache::obs
