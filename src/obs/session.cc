#include "obs/session.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/export.hh"
#include "obs/run_meta.hh"
#include "obs/trace.hh"
#include "sim/report.hh"

namespace adcache::obs
{

namespace
{

std::string
envString(const char *name)
{
    const char *v = std::getenv(name);
    return v != nullptr ? std::string(v) : std::string();
}

bool
envTruthy(const char *name)
{
    const std::string v = envString(name);
    return !(v.empty() || v == "0" || v == "off" || v == "false");
}

/** True while a primary Session is live (see Session ctor doc). */
bool g_sessionLive = false;

} // namespace

Session::Session(std::string name) : name_(std::move(name))
{
    if (g_sessionLive) {
        finished_ = true; // inert: the outer Session exports
        return;
    }
    g_sessionLive = true;
    primary_ = true;

    traceOut_ = envString("ADCACHE_TRACE_OUT");
    chromeOut_ = envString("ADCACHE_TRACE_CHROME");
    seriesOut_ = envString("ADCACHE_SERIES_OUT");

    const bool want_trace = envTruthy("ADCACHE_TRACE") ||
                            !traceOut_.empty() ||
                            !chromeOut_.empty();
    const bool want_latency = envTruthy("ADCACHE_LAT");

    if ((want_trace || want_latency) && !kTraceCompiled) {
        std::fprintf(stderr,
                     "[obs] tracing requested but compiled out "
                     "(build with -DADCACHE_TRACE=ON)\n");
        return;
    }

    tracing_ = want_trace;
    latency_ = want_latency;
    setTraceEnabled(tracing_);
    setLatencyEnabled(latency_);
}

Session::~Session() { finish(); }

std::uint64_t
Session::seriesInterval(std::uint64_t fallback)
{
    const std::string v = envString("ADCACHE_SERIES_EVERY");
    if (v.empty())
        return fallback;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0' || n == 0)
        return fallback;
    return std::uint64_t(n);
}

void
Session::writeSeries(const ReportGrid &grid) const
{
    if (seriesOut_.empty())
        return;
    ReportGrid copy = grid;
    appendRunMeta(copy);
    if (writeFile(seriesOut_, renderCsv(copy)))
        std::fprintf(stderr, "[obs] wrote %zu series rows to %s\n",
                     copy.rows.size(), seriesOut_.c_str());
}

void
Session::finish()
{
    if (finished_)
        return;
    finished_ = true;
    g_sessionLive = false;
    if (!tracing_ && !latency_)
        return;

    if (tracing_) {
        const auto events = drainAll();
        const std::uint64_t dropped = droppedTotal();
        if (!traceOut_.empty()) {
            MetaPairs meta;
            meta.emplace_back("session", name_);
            for (const auto &kv : collectRunMeta())
                meta.push_back(kv);
            if (writeFile(traceOut_,
                          eventsToJsonl(events, meta, dropped)))
                std::fprintf(
                    stderr,
                    "[obs] wrote %zu events (%llu dropped) to %s\n",
                    events.size(),
                    static_cast<unsigned long long>(dropped),
                    traceOut_.c_str());
        }
        const auto spans = drainSpans();
        if (!chromeOut_.empty()) {
            if (writeFile(chromeOut_, spansToChromeTrace(spans)))
                std::fprintf(
                    stderr,
                    "[obs] wrote %zu spans to %s (load in Perfetto "
                    "or chrome://tracing)\n",
                    spans.size(), chromeOut_.c_str());
        }
    }

    setTraceEnabled(false);
    setLatencyEnabled(false);
}

} // namespace adcache::obs
