/**
 * @file
 * MetricsHttpServer: the smallest HTTP/1.0-ish listener that can
 * satisfy a Prometheus scraper — GET /metrics renders the attached
 * MetricsRegistry in the text exposition format, GET /healthz
 * answers "ok", anything else is 404. One background thread, one
 * poll(2) loop (the same nonblocking-fd idiom as net/server.cc),
 * Connection: close on every response. This is deliberately not a
 * web server: no keep-alive, no chunking, no TLS; a scrape a second
 * from a handful of collectors is the design load.
 */

#ifndef ADCACHE_OBS_METRICS_HTTP_HH
#define ADCACHE_OBS_METRICS_HTTP_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/metrics.hh"

namespace adcache::obs
{

struct MetricsHttpConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0; //!< 0 = ephemeral; see port() after start
};

class MetricsHttpServer
{
  public:
    MetricsHttpServer(MetricsRegistry &registry,
                      MetricsHttpConfig config = {});
    ~MetricsHttpServer();

    MetricsHttpServer(const MetricsHttpServer &) = delete;
    MetricsHttpServer &operator=(const MetricsHttpServer &) = delete;

    /** Bind + listen + spawn the loop. False (with lastError()) on
     *  bind failure. */
    bool start();

    /** Stop the loop and join the thread (idempotent). */
    void stop();

    /** The bound port (after start()). */
    std::uint16_t port() const { return port_; }

    /** Requests answered (any status). */
    std::uint64_t requestsServed() const;

    const std::string &lastError() const { return lastError_; }

  private:
    void loop();

    MetricsRegistry &registry_;
    MetricsHttpConfig config_;
    int listenFd_ = -1;
    int wakeRead_ = -1;
    int wakeWrite_ = -1;
    std::uint16_t port_ = 0;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> requests_{0};
    std::string lastError_;
};

} // namespace adcache::obs

#endif // ADCACHE_OBS_METRICS_HTTP_HH
