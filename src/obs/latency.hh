/**
 * @file
 * Log-bucketed latency histograms for the kv cache's public
 * operations. Each thread records into its own per-op histograms
 * (no synchronisation on the record path); a snapshot merges all
 * threads' histograms into one, so percentiles are over the whole
 * fleet. Recording is gated by obs::latencyEnabled() (ADCACHE_LAT)
 * independently of event tracing, because timing two clock reads per
 * op is a real cost the throughput bench must be able to decline.
 */

#ifndef ADCACHE_OBS_LATENCY_HH
#define ADCACHE_OBS_LATENCY_HH

#include <cstdint>
#include <string>

#include "util/stats.hh"

namespace adcache
{
class StatRegistry;
}

namespace adcache::obs
{

/** The kv facade operations with latency instrumentation. */
enum class KvOp : unsigned
{
    Get = 0,
    Fetch = 1,
    Put = 2,
    /** A get that could not complete lock-free (optimistic-retry
     *  exhaustion or a full deferred-touch ring) and took the shard
     *  mutex — split out so hit-path and slow-path latency
     *  distributions stay distinguishable. */
    GetSlow = 3,
    /** One getMany() batch (the whole batch is one sample, whatever
     *  its size — batched callers care about per-batch latency). */
    GetMany = 4,
};

inline constexpr unsigned kNumKvOps = 5;

/** Canonical lower-case name of @p op. */
const char *kvOpName(KvOp op);

/**
 * One latency distribution: log buckets (12.5% quantile error)
 * plus exact count / sum / min / max. Mergeable across threads.
 */
class LatencyHistogram
{
  public:
    void
    add(std::uint64_t ns)
    {
        buckets_.addValue(ns);
        ++count_;
        sum_ += ns;
        min_ = count_ == 1 ? ns : (ns < min_ ? ns : min_);
        max_ = ns > max_ ? ns : max_;
    }

    void merge(const LatencyHistogram &other);

    std::uint64_t count() const { return count_; }
    std::uint64_t sumNs() const { return sum_; }
    /** Smallest / largest sample; assert count() > 0. */
    std::uint64_t minNs() const;
    std::uint64_t maxNs() const;
    double meanNs() const;

    /** Bucket-edge estimate of the p-quantile, p in (0, 1]. */
    double percentileNs(double p) const;

    /**
     * Register count/mean/p50/p95/p99/p999/max under "<prefix>"
     * into @p reg (no-op when count() == 0).
     */
    void registerInto(StatRegistry &reg,
                      const std::string &prefix) const;

  private:
    LogBuckets buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * Record one operation latency into the calling thread's histogram.
 * Call only inside an `if (latencyEnabled())` block.
 */
void recordLatency(KvOp op, std::uint64_t ns);

/**
 * Merge every thread's histogram for @p op into one. Histograms are
 * plain (unsynchronised) accumulators, so call this only while the
 * recording threads are quiescent (e.g. after joining a round).
 */
LatencyHistogram latencySnapshot(KvOp op);

/** Forget all recorded latencies (all threads re-attach lazily). */
void resetLatency();

} // namespace adcache::obs

#endif // ADCACHE_OBS_LATENCY_HH
