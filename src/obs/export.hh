/**
 * @file
 * Serialisers for drained trace data: a JSONL event stream (one
 * self-describing object per line, header line first) and the Chrome
 * trace_event format for wall-clock spans, which loads directly in
 * Perfetto / chrome://tracing. Both emitters are deterministic for a
 * given input (Chrome timestamps are relative to the earliest span),
 * so tests can golden-file them byte-exactly.
 */

#ifndef ADCACHE_OBS_EXPORT_HH
#define ADCACHE_OBS_EXPORT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/event.hh"
#include "obs/trace.hh"

namespace adcache::obs
{

/** Key/value pairs carried in the JSONL header line. */
using MetaPairs = std::vector<std::pair<std::string, std::string>>;

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/**
 * Render @p events as JSONL: first a header object
 * `{"kind":"header","events":N,"dropped":D, ...meta}` then one
 * object per event with kind-specific field names (see
 * docs/OBSERVABILITY.md for the taxonomy). Ends with a newline.
 */
std::string eventsToJsonl(const std::vector<TraceEvent> &events,
                          const MetaPairs &meta,
                          std::uint64_t dropped);

/**
 * Render @p spans as a Chrome trace_event JSON document of complete
 * ("ph":"X") events, microsecond timestamps relative to the earliest
 * span start. Loadable in Perfetto / chrome://tracing.
 */
std::string spansToChromeTrace(const std::vector<Span> &spans);

/**
 * Write @p content to @p path (truncating). Returns false (with a
 * warning) on failure — exporters must never take down a run.
 */
bool writeFile(const std::string &path, const std::string &content);

} // namespace adcache::obs

#endif // ADCACHE_OBS_EXPORT_HH
