#include "obs/ring.hh"

#include <bit>

#include "util/logging.hh"

namespace adcache::obs
{

EventRing::EventRing(std::size_t capacity)
{
    adcache_assert(capacity >= 2);
    slots_.resize(std::bit_ceil(capacity));
    mask_ = slots_.size() - 1;
}

std::size_t
EventRing::drain(std::vector<TraceEvent> &out)
{
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t n = head - tail;
    out.reserve(out.size() + n);
    for (std::size_t i = tail; i != head; ++i)
        out.push_back(slots_[i & mask_]);
    tail_.store(head, std::memory_order_release);
    return n;
}

} // namespace adcache::obs
