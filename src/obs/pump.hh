/**
 * @file
 * TelemetryPump: the background thread that turns the passive
 * telemetry pieces into a live loop. Once a second (configurable) it
 *
 *  1. fires the caller's SnapshotSeries sampler, so a serving
 *     process accumulates the same per-interval rows the bench
 *     drivers produce offline,
 *  2. pulls cumulative per-shard adaptation counters (winner flips,
 *     differentiating misses, references) through the caller's
 *     driftSampler, converts them to per-period deltas, and feeds
 *     the DriftMonitor — each threshold crossing emits a `kv_drift`
 *     trace event and one structured log line, and
 *  3. publishes the rolling drift EWMAs as per-shard gauges in the
 *     metrics registry (when one is attached), so /metrics shows
 *     adaptation health, not just raw counters.
 *
 * Everything the pump does is scrape-rate work: nothing here touches
 * a request hot path. Tests drive it deterministically with
 * tickOnce() instead of starting the thread.
 */

#ifndef ADCACHE_OBS_PUMP_HH
#define ADCACHE_OBS_PUMP_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/drift.hh"
#include "obs/metrics.hh"
#include "obs/snapshot.hh"

namespace adcache::obs
{

/** One shard's cumulative adaptation counters, as sampled. */
struct DriftShardSample
{
    std::uint64_t flips = 0;      //!< selection flips, cumulative
    std::uint64_t diffMisses = 0; //!< differentiating misses, cum.
    std::uint64_t ops = 0;        //!< references, cumulative
};

struct TelemetryPumpConfig
{
    /** Sampling period of the background thread. */
    std::chrono::milliseconds period{1000};
    /** Snapshot cadence in periods: the SnapshotSeries sampler
     *  fires every this-many periods (1 = every period). */
    std::uint64_t snapshotEvery = 1;
    DriftConfig drift;
    /** Snapshot sampler (see SnapshotSeries); optional. */
    SnapshotSeries::Sampler sampler;
    /** Returns every shard's cumulative counters; optional. */
    std::function<std::vector<DriftShardSample>()> driftSampler;
    /** Receives one structured line per drift crossing; defaults to
     *  stderr. */
    std::function<void(const std::string &)> logSink;
    /** When set, drift EWMAs are published as per-shard gauges and
     *  crossings counted, under adcache_kv_drift_*. */
    MetricsRegistry *metrics = nullptr;
};

class TelemetryPump
{
  public:
    explicit TelemetryPump(TelemetryPumpConfig config);
    ~TelemetryPump();

    TelemetryPump(const TelemetryPump &) = delete;
    TelemetryPump &operator=(const TelemetryPump &) = delete;

    /** Spawn the background thread (idempotent). */
    void start();

    /** Stop and join it (idempotent; also run by the destructor). */
    void stop();

    /**
     * Run one sampling period synchronously — what the thread does
     * once per period. Deterministic test entry point; safe to call
     * when the thread is not running.
     */
    void tickOnce();

    /** Periods sampled so far. */
    std::uint64_t periods() const;

    /** kv_drift crossings observed so far (both signals). */
    std::uint64_t driftEvents() const;

    /** The accumulated snapshot rows (empty without a sampler). */
    const SnapshotSeries *series() const { return series_.get(); }

  private:
    void run();
    void publishGauges(std::size_t shard, const DriftVerdict &v);

    TelemetryPumpConfig config_;
    DriftMonitor monitor_;
    std::unique_ptr<SnapshotSeries> series_;
    std::vector<DriftShardSample> prev_;

    // Lazily created per-shard gauges (index = shard).
    std::vector<Gauge> flipGauges_;
    std::vector<Gauge> diffMissGauges_;
    Counter driftCounter_;

    mutable std::mutex mtx_; //!< guards tick state + cv
    std::condition_variable cv_;
    std::thread thread_;
    bool running_ = false;
    bool stopRequested_ = false;
    std::uint64_t periods_ = 0;
    std::uint64_t driftEvents_ = 0;
};

} // namespace adcache::obs

#endif // ADCACHE_OBS_PUMP_HH
