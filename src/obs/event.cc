#include "obs/event.hh"

namespace adcache::obs
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::DiffMiss:
        return "diff_miss";
      case EventKind::WinnerFlip:
        return "winner_flip";
      case EventKind::Eviction:
        return "eviction";
      case EventKind::ShadowEvict:
        return "shadow_evict";
      case EventKind::SbarPselCross:
        return "sbar_psel_cross";
      case EventKind::KvEviction:
        return "kv_eviction";
      case EventKind::KvWinnerFlip:
        return "kv_winner_flip";
      case EventKind::KvAdmitReject:
        return "kv_admit_reject";
      case EventKind::KvReadRetry:
        return "kv_read_retry";
      case EventKind::KvDrift:
        return "kv_drift";
    }
    return "?";
}

const char *
driftSignalName(DriftSignal s)
{
    switch (s) {
      case DriftSignal::WinnerFlips:
        return "winner_flips";
      case DriftSignal::DiffMisses:
        return "diff_misses";
    }
    return "?";
}

const char *
evictCaseName(EvictCase c)
{
    switch (c) {
      case EvictCase::VictimMatch:
        return "victim_match";
      case EvictCase::ShadowAbsent:
        return "shadow_absent";
      case EvictCase::AliasingFallback:
        return "aliasing_fallback";
    }
    return "?";
}

} // namespace adcache::obs
