#include "obs/drift.hh"

#include "util/logging.hh"

namespace adcache::obs
{

DriftMonitor::DriftMonitor(DriftConfig config, std::size_t shards)
    : config_(config), shards_(shards)
{
    adcache_assert(config_.alpha > 0.0 && config_.alpha <= 1.0);
}

bool
DriftMonitor::judge(Signal &sig, double rate, double threshold,
                    bool warm)
{
    sig.ewma = config_.alpha * rate +
               (1.0 - config_.alpha) * sig.ewma;
    if (sig.cooldown > 0) {
        --sig.cooldown;
        return false;
    }
    if (!warm || sig.ewma < threshold)
        return false;
    sig.cooldown = config_.cooldownSamples;
    return true;
}

DriftVerdict
DriftMonitor::sample(std::size_t shard, std::uint64_t flips,
                     std::uint64_t diffMisses, std::uint64_t ops)
{
    if (shard >= shards_.size())
        shards_.resize(shard + 1);
    ShardState &st = shards_[shard];

    DriftVerdict v;
    if (ops == 0) {
        v.flipEwma = st.flip.ewma;
        v.diffMissEwma = st.diffMiss.ewma;
        return v;
    }
    ++st.periods;
    const bool warm = st.periods > config_.warmupSamples;
    const double inv = 1.0 / double(ops);
    v.flipDrift = judge(st.flip, double(flips) * inv,
                        config_.flipRateThreshold, warm);
    v.diffMissDrift = judge(st.diffMiss, double(diffMisses) * inv,
                            config_.diffMissRateThreshold, warm);
    v.flipEwma = st.flip.ewma;
    v.diffMissEwma = st.diffMiss.ewma;
    return v;
}

} // namespace adcache::obs
