/**
 * @file
 * Adaptation-drift monitor: per-shard EWMAs of the two signals that
 * say "the workload is phase-changing under this shard" — the
 * winner-flip rate (selection keeps reversing itself) and the
 * differentiating-miss rate (the candidate policies keep
 * disagreeing). A sustained high value of either means the shard is
 * re-adapting faster than its observation window settles, which is
 * exactly the situation Fig. 7's phase maps capture offline; this
 * class makes it a live, thresholded signal (and the sensor input
 * ROADMAP item 2's capacity rebalancer will read).
 *
 * The monitor is pure state + arithmetic: callers feed it cumulative
 * counter deltas per sampling period (TelemetryPump does this at 1
 * Hz) and act on the returned verdicts. Crossings are edge-triggered
 * with a cooldown so a shard sitting just above the threshold logs
 * once per cooldown window, not once per second.
 */

#ifndef ADCACHE_OBS_DRIFT_HH
#define ADCACHE_OBS_DRIFT_HH

#include <cstdint>
#include <vector>

namespace adcache::obs
{

struct DriftConfig
{
    /** EWMA smoothing: new = alpha * sample + (1 - alpha) * old. */
    double alpha = 0.3;
    /** Flips per op above which a shard is drifting (a flip every
     *  2000 ops sustained = thrashing selection). */
    double flipRateThreshold = 5e-4;
    /** Differentiating misses per op above which a shard is
     *  drifting. */
    double diffMissRateThreshold = 2e-2;
    /** Periods a signal stays latched after firing before it may
     *  fire again (still-above re-arms a fresh crossing). */
    std::uint32_t cooldownSamples = 10;
    /** Periods to observe a shard before it may fire at all, so the
     *  fill-phase flip burst does not alarm. */
    std::uint32_t warmupSamples = 3;
};

/** One period's judgement for one shard. */
struct DriftVerdict
{
    /** Edge-triggered: this period crossed the flip threshold (and
     *  was not in cooldown). */
    bool flipDrift = false;
    /** Likewise for the differentiating-miss signal. */
    bool diffMissDrift = false;
    /** Current EWMAs, events per op (reported even when quiet). */
    double flipEwma = 0.0;
    double diffMissEwma = 0.0;
};

class DriftMonitor
{
  public:
    explicit DriftMonitor(DriftConfig config = {},
                          std::size_t shards = 0);

    /**
     * Feed one period of one shard: @p flips and @p diffMisses are
     * the counter DELTAS over the period, @p ops the operation
     * (reference) delta. Periods with no traffic leave the EWMAs
     * untouched (an idle shard is not "calm", it is unobserved).
     */
    DriftVerdict sample(std::size_t shard, std::uint64_t flips,
                        std::uint64_t diffMisses,
                        std::uint64_t ops);

    const DriftConfig &config() const { return config_; }
    std::size_t shardCount() const { return shards_.size(); }

  private:
    struct Signal
    {
        double ewma = 0.0;
        std::uint32_t cooldown = 0;
    };
    struct ShardState
    {
        Signal flip;
        Signal diffMiss;
        std::uint32_t periods = 0;
    };

    bool judge(Signal &sig, double rate, double threshold,
               bool warm);

    DriftConfig config_;
    std::vector<ShardState> shards_;
};

} // namespace adcache::obs

#endif // ADCACHE_OBS_DRIFT_HH
