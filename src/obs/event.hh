/**
 * @file
 * Typed trace events of the observability subsystem (src/obs). One
 * compact POD represents every decision-level event the instrumented
 * components emit; the kind selects how the generic payload fields
 * are interpreted (see the per-kind constructors below and the event
 * taxonomy in docs/OBSERVABILITY.md).
 *
 * Events carry a *logical* timestamp: the emitting component's own
 * access/reference count. Wall-clock timelines (experiment-runner
 * job spans) are recorded separately as Span records (obs/trace.hh)
 * because they outlive a single component's access domain.
 */

#ifndef ADCACHE_OBS_EVENT_HH
#define ADCACHE_OBS_EVENT_HH

#include <cstdint>

namespace adcache::obs
{

/** What a TraceEvent records. */
enum class EventKind : std::uint16_t
{
    /** A differentiating miss: some but not all components missed. */
    DiffMiss,
    /** The per-set winner changed between replacement decisions. */
    WinnerFlip,
    /** A real eviction, tagged with the imitation case taken. */
    Eviction,
    /** A component (shadow) simulation displaced a block. */
    ShadowEvict,
    /** SBAR's global PSEL counter crossed the selection midpoint. */
    SbarPselCross,
    /** A kv shard evicted an entry. */
    KvEviction,
    /** A kv shard's selection domain changed winners. */
    KvWinnerFlip,
    /** A kv shard's TinyLFU filter refused to admit a candidate. */
    KvAdmitReject,
    /** An optimistic kv read exhausted its retry budget and fell
     *  back to the mutex slow path. */
    KvReadRetry,
    /** The drift monitor's EWMA of a shard's adaptation signal
     *  (winner flips or differentiating misses) crossed its
     *  threshold: the workload is phase-changing faster than the
     *  cadence assumes. */
    KvDrift,
};

/** Which adaptation signal a KvDrift event fired on. */
enum class DriftSignal : std::uint8_t
{
    WinnerFlips, //!< winner-flip rate EWMA
    DiffMisses,  //!< differentiating-miss rate EWMA
};

/** Canonical lower-case snake_case name of @p s. */
const char *driftSignalName(DriftSignal s);

/** Which of Algorithm 1's three victim searches produced the victim
 *  (Sec. 3.1; the kv analog maps directed/policy/fallback onto the
 *  same three cases). */
enum class EvictCase : std::uint8_t
{
    VictimMatch,      //!< case 1: imitated the winner's displacement
    ShadowAbsent,     //!< case 2: evicted a block absent from winner
    AliasingFallback, //!< case 3: aliasing/pins defeated both searches
};

/** Canonical lower-case snake_case name of @p kind. */
const char *eventKindName(EventKind kind);

/** Canonical lower-case snake_case name of @p c. */
const char *evictCaseName(EvictCase c);

/**
 * One trace event: 24 bytes, trivially copyable, meaning of the
 * payload fields fixed per kind (see the constructors below).
 */
struct TraceEvent
{
    std::uint64_t t = 0;    //!< logical time: emitter's access count
    std::uint64_t addr = 0; //!< tag / key payload (kind-specific)
    std::uint32_t a = 0;    //!< set / shard index (kind-specific)
    std::uint16_t b = 0;    //!< packed small fields (kind-specific)
    EventKind kind = EventKind::DiffMiss;
};

/** Pack (from, to) component ordinals into the b field. */
constexpr std::uint16_t
packFromTo(unsigned from, unsigned to)
{
    return std::uint16_t((from << 8) | (to & 0xFF));
}

/** Pack (winner, case) into the b field. */
constexpr std::uint16_t
packWinnerCase(unsigned winner, EvictCase c)
{
    return std::uint16_t((winner << 8) |
                         (static_cast<unsigned>(c) & 0xFF));
}

constexpr TraceEvent
diffMissEvent(std::uint64_t t, unsigned set, std::uint32_t miss_mask)
{
    return {t, 0, set, std::uint16_t(miss_mask), EventKind::DiffMiss};
}

constexpr TraceEvent
winnerFlipEvent(std::uint64_t t, unsigned set, unsigned from,
                unsigned to)
{
    return {t, 0, set, packFromTo(from, to), EventKind::WinnerFlip};
}

constexpr TraceEvent
evictionEvent(std::uint64_t t, unsigned set, unsigned winner,
              EvictCase c, std::uint64_t victim_tag)
{
    return {t, victim_tag, set, packWinnerCase(winner, c),
            EventKind::Eviction};
}

constexpr TraceEvent
shadowEvictEvent(std::uint64_t t, unsigned set, unsigned component,
                 std::uint64_t victim_tag)
{
    return {t, victim_tag, set, std::uint16_t(component),
            EventKind::ShadowEvict};
}

constexpr TraceEvent
sbarPselEvent(std::uint64_t t, std::uint32_t psel, unsigned from,
              unsigned to)
{
    return {t, 0, psel, packFromTo(from, to),
            EventKind::SbarPselCross};
}

constexpr TraceEvent
kvEvictionEvent(std::uint64_t t, unsigned shard, unsigned winner,
                EvictCase c, std::uint64_t key)
{
    return {t, key, shard, packWinnerCase(winner, c),
            EventKind::KvEviction};
}

constexpr TraceEvent
kvWinnerFlipEvent(std::uint64_t t, unsigned shard, unsigned from,
                  unsigned to)
{
    return {t, 0, shard, packFromTo(from, to),
            EventKind::KvWinnerFlip};
}

constexpr TraceEvent
kvAdmitRejectEvent(std::uint64_t t, unsigned shard, unsigned winner,
                   std::uint64_t key)
{
    return {t, key, shard, std::uint16_t(winner),
            EventKind::KvAdmitReject};
}

constexpr TraceEvent
kvReadRetryEvent(std::uint64_t t, unsigned shard, unsigned retries,
                 std::uint64_t key)
{
    return {t, key, shard, std::uint16_t(retries),
            EventKind::KvReadRetry};
}

/** @p ewma_ppm is the crossing EWMA expressed in events-per-million
 *  ops (fits the 64-bit payload without a float field). */
constexpr TraceEvent
kvDriftEvent(std::uint64_t t, unsigned shard, DriftSignal signal,
             std::uint64_t ewma_ppm)
{
    return {t, ewma_ppm, shard,
            std::uint16_t(static_cast<unsigned>(signal)),
            EventKind::KvDrift};
}

} // namespace adcache::obs

#endif // ADCACHE_OBS_EVENT_HH
