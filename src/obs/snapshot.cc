#include "obs/snapshot.hh"

#include <utility>

#include "util/logging.hh"

namespace adcache::obs
{

SnapshotSeries::SnapshotSeries(std::uint64_t interval,
                               Sampler sampler)
    : interval_(interval), next_(interval),
      sampler_(std::move(sampler))
{
    adcache_assert(interval_ > 0);
    adcache_assert(sampler_);
}

void
SnapshotSeries::fire(std::uint64_t at, bool partial)
{
    Row row;
    row.index = rows_.size();
    row.at = at;
    row.partial = partial;
    sampler_(row.stats);
    rows_.push_back(std::move(row));
}

void
SnapshotSeries::tick(std::uint64_t now)
{
    while (now >= next_) {
        fire(next_, false);
        next_ += interval_;
    }
}

void
SnapshotSeries::finish(std::uint64_t now)
{
    tick(now);
    const std::uint64_t last = rows_.empty() ? 0 : rows_.back().at;
    if (now > last)
        fire(now, true);
}

void
SnapshotSeries::derive(std::string name, Derive fn)
{
    derived_.emplace_back(std::move(name), std::move(fn));
}

SnapshotSeries::Derive
SnapshotSeries::rate(std::string counter, double scale)
{
    return [counter = std::move(counter),
            scale](const StatRegistry &cur, const StatRegistry *prev,
                   std::uint64_t dt) {
        if (dt == 0)
            return 0.0;
        const double before =
            prev != nullptr ? prev->numeric(counter) : 0.0;
        return (cur.numeric(counter) - before) * scale / double(dt);
    };
}

SnapshotSeries::Derive
SnapshotSeries::share(std::string numerator, std::string denominator)
{
    return [num = std::move(numerator), den = std::move(denominator)](
               const StatRegistry &cur, const StatRegistry *prev,
               std::uint64_t) {
        const double num_before =
            prev != nullptr ? prev->numeric(num) : 0.0;
        const double den_before =
            prev != nullptr ? prev->numeric(den) : 0.0;
        const double d_den = cur.numeric(den) - den_before;
        if (d_den == 0.0)
            return 0.0;
        return (cur.numeric(num) - num_before) / d_den;
    };
}

// SnapshotSeries::appendTo is defined in obs/report_bridge.cc
// (compiled into the sim library) because it constructs ReportGrid
// rows; the obs library itself stays independent of sim/report.

} // namespace adcache::obs
