/**
 * @file
 * Live metrics plane of the observability subsystem: a lock-cheap
 * MetricsRegistry every serving-side component registers into, plus
 * Prometheus text-exposition rendering of its scrapes.
 *
 * Two registration styles, chosen by where the counter lives:
 *
 *  - HANDLES (Counter / Gauge / HistogramHandle): for components
 *    that do not already keep the count — server transports, the
 *    YCSB driver. Increments go to a per-thread shard cell (relaxed
 *    atomics on thread-private cache lines, no RMW contention); a
 *    scrape merges every thread's shard. A default-constructed
 *    handle is inert (one predictable null check), so instrumented
 *    code needs no "is telemetry on" plumbing.
 *
 *  - COLLECTORS (addCollector): for components that already maintain
 *    counters under their own synchronisation — KvShard/
 *    AdaptiveKvCache, the trace rings. The callback samples them at
 *    scrape time into the snapshot, so the component's hot path pays
 *    NOTHING for being observable (the perf_regress
 *    `metrics-overhead` gate enforces this: the kv read path budget
 *    is < 1%, and the scrape itself amortises to noise at 1 Hz).
 *
 * A scrape() walks families in registration order, merges thread
 * shards, runs collectors, and returns a MetricsSnapshot;
 * renderPrometheus() turns one into the Prometheus text exposition
 * format (version 0.0.4): stable ordering, escaped label values,
 * cumulative histogram buckets with le/+Inf, _sum and _count.
 */

#ifndef ADCACHE_OBS_METRICS_HH
#define ADCACHE_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace adcache::obs
{

/** Label set of one metric instance, in render order. */
using MetricLabels =
    std::vector<std::pair<std::string, std::string>>;

/** What a metric family reports as its # TYPE. */
enum class MetricKind
{
    Counter,
    Gauge,
    Histogram,
};

/** Printable Prometheus type name ("counter", ...). */
const char *metricKindName(MetricKind kind);

/** Histogram bucket upper bounds: powers of two from 1 << kLoBit up
 *  to 1 << kHiBit nanoseconds (~1 us .. ~1 s), then +Inf. */
inline constexpr unsigned kHistLoBit = 10;
inline constexpr unsigned kHistHiBit = 30;
inline constexpr unsigned kHistBuckets = kHistHiBit - kHistLoBit + 1;

/** Bucket index of one observation (kHistBuckets = +Inf). */
inline unsigned
histBucketOf(std::uint64_t ns)
{
    for (unsigned b = 0; b < kHistBuckets; ++b)
        if (ns <= (std::uint64_t(1) << (kHistLoBit + b)))
            return b;
    return kHistBuckets;
}

class MetricsRegistryImpl;

namespace detail
{

class MetricsShard;

/** One registered (name, labels) instance. */
struct Family
{
    MetricsRegistryImpl *owner = nullptr;
    MetricKind kind = MetricKind::Counter;
    std::string name;
    std::string help;
    MetricLabels labels;
    /** First slot in the per-thread shard; histograms own
     *  kHistBuckets + 2 consecutive slots (buckets, +Inf, sum).
     *  There is no stored count: a scrape derives it as the sum of
     *  the merged buckets, which keeps sum(buckets) == count exact
     *  even against concurrent observes. */
    std::uint32_t slot = 0;
    /** Gauges are last-writer-wins, not mergeable: one cell. */
    std::atomic<double> gauge{0.0};
};

} // namespace detail

/** Monotone event-count handle (see file comment). Copyable;
 *  default-constructed handles are inert. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1);

    /** Summed over every thread's shard (scrape-coherent enough for
     *  tests; prefer scrape() for reports). */
    std::uint64_t value() const;

    bool attached() const { return family_ != nullptr; }

  private:
    friend class MetricsRegistry;
    explicit Counter(detail::Family *family) : family_(family) {}
    detail::Family *family_ = nullptr;
};

/** Last-writer-wins instantaneous value handle. */
class Gauge
{
  public:
    Gauge() = default;

    void set(double v);
    double value() const;

    bool attached() const { return family_ != nullptr; }

  private:
    friend class MetricsRegistry;
    explicit Gauge(detail::Family *family) : family_(family) {}
    detail::Family *family_ = nullptr;
};

/** Log-bucketed distribution handle (bounds above). */
class HistogramHandle
{
  public:
    HistogramHandle() = default;

    void observe(std::uint64_t ns);

    bool attached() const { return family_ != nullptr; }

  private:
    friend class MetricsRegistry;
    explicit HistogramHandle(detail::Family *family)
        : family_(family)
    {
    }
    detail::Family *family_ = nullptr;
};

/** One sampled metric in a scrape. */
struct MetricSample
{
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::Counter;
    MetricLabels labels;
    /** Counter / gauge value. */
    double value = 0.0;
    /** Histogram per-bucket counts (size kHistBuckets + 1, last =
     *  +Inf) — NON-cumulative here; rendering accumulates. */
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0; //!< histogram observation count
    double sum = 0.0;        //!< histogram observation sum
};

/** One scrape: every family plus every collector's samples, in
 *  registration order. */
struct MetricsSnapshot
{
    std::vector<MetricSample> samples;

    /** First sample named @p name carrying label (@p key == @p val);
     *  empty key matches any labels. nullptr if absent. */
    const MetricSample *find(const std::string &name,
                             const std::string &key = "",
                             const std::string &val = "") const;

    /** p-quantile estimate (bucket upper edge) of histogram @p name;
     *  0 when absent or empty. */
    double percentileNs(const std::string &name, double p) const;
};

/** Scrape-time sink collectors append samples through. */
class MetricsSink
{
  public:
    explicit MetricsSink(std::vector<MetricSample> *out) : out_(out)
    {
    }

    void counter(std::string name, MetricLabels labels, double v,
                 std::string help = "");
    void gauge(std::string name, MetricLabels labels, double v,
               std::string help = "");

  private:
    std::vector<MetricSample> *out_;
};

/** The registry (see file comment). Thread-safe: handle operations
 *  are lock-free on the caller's own shard; registration and scrape
 *  serialize on an internal mutex. */
class MetricsRegistry
{
  public:
    MetricsRegistry();
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Create (or re-fetch, on exact name+labels match) handles. */
    Counter counter(const std::string &name,
                    const std::string &help = "",
                    const MetricLabels &labels = {});
    Gauge gauge(const std::string &name,
                const std::string &help = "",
                const MetricLabels &labels = {});
    HistogramHandle histogram(const std::string &name,
                              const std::string &help = "",
                              const MetricLabels &labels = {});

    /** Register a scrape-time collector (called in registration
     *  order under the scrape lock). */
    void addCollector(std::function<void(MetricsSink &)> fn);

    /** Merge every thread shard + run every collector. */
    MetricsSnapshot scrape() const;

    /** Registered families (not counting collector output). */
    std::size_t familyCount() const;

  private:
    friend class Counter;
    friend class Gauge;
    friend class HistogramHandle;
    std::unique_ptr<class MetricsRegistryImpl> impl_;
};

/** Render @p snap in the Prometheus text exposition format. */
std::string renderPrometheus(const MetricsSnapshot &snap);

/**
 * Register the trace plane's own health into @p reg: whether tracing
 * is compiled/enabled and each ring's dropped-event count
 * (adcache_trace_dropped_total{ring="N"}) — silent trace loss
 * becomes a live, scrapeable signal instead of a JSONL header
 * footnote.
 */
void registerTraceMetrics(MetricsRegistry &reg);

/**
 * Marginal cost of one Counter::inc on an attached handle, in
 * nanoseconds (>= 0; measured as a paired-loop difference like
 * measureGateCostNs). Used by the perf_regress metrics-overhead
 * gate.
 */
double measureCounterCostNs(MetricsRegistry &reg);

} // namespace adcache::obs

#endif // ADCACHE_OBS_METRICS_HH
