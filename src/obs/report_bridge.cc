/**
 * @file
 * The obs <-> sim/report bridge: definitions of the obs API surface
 * that constructs ReportGrid rows. Compiled into the *sim* library
 * (see src/CMakeLists.txt) so the obs library proper has no link
 * dependency on sim — sim depends on core depends on obs, and this
 * file closes the loop from the sim side.
 */

#include <algorithm>

#include "obs/run_meta.hh"
#include "obs/snapshot.hh"
#include "sim/report.hh"

namespace adcache::obs
{

void
SnapshotSeries::appendTo(ReportGrid &grid,
                         const std::string &label) const
{
    grid.benchmarkHeader = "interval_end";
    const StatRegistry *prev = nullptr;
    std::uint64_t prev_at = 0;
    for (const Row &row : rows_) {
        ReportRow &out = grid.add(std::to_string(row.at), label);
        for (const StatEntry &e : row.stats.entries()) {
            switch (e.kind) {
              case StatEntry::Kind::Counter: {
                const double before =
                    prev != nullptr && prev->find(e.name) != nullptr
                        ? prev->numeric(e.name)
                        : 0.0;
                out.stats.value("d_" + e.name,
                                double(e.counter) - before);
                break;
              }
              case StatEntry::Kind::Value:
                out.stats.value(e.name, e.value);
                break;
              case StatEntry::Kind::Text:
                out.stats.text(e.name, e.text);
                break;
            }
        }
        const std::uint64_t dt = row.at - prev_at;
        for (const auto &[name, fn] : derived_)
            out.stats.value(name, fn(row.stats, prev, dt));
        if (row.partial)
            out.stats.text("partial", "yes");
        prev = &row.stats;
        prev_at = row.at;
    }
}

void
appendRunMeta(ReportGrid &grid)
{
    for (const auto &[key, value] : collectRunMeta()) {
        const bool present = std::any_of(
            grid.meta.begin(), grid.meta.end(),
            [&key = key](const auto &kv) { return kv.first == key; });
        if (!present)
            grid.addMeta(key, value);
    }
}

} // namespace adcache::obs
