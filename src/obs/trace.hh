/**
 * @file
 * The tracing facade: compile-time and runtime gates, per-thread
 * event rings, and wall-clock spans for job timelines.
 *
 * Gating contract (this is what makes tracing zero-cost-when-off):
 *
 *  - `ADCACHE_TRACE` (CMake option, default ON) controls whether any
 *    tracing code is *compiled*. When OFF, `traceEnabled()` is
 *    `if constexpr (false)` — call sites type-check but dead-strip.
 *  - At runtime tracing starts disabled; `setTraceEnabled(true)` (or
 *    an obs::Session reading `ADCACHE_TRACE=1`) turns it on.
 *  - Instrumented components place the `traceEnabled()` check *off
 *    the hit path*: only real misses, differentiating misses, and
 *    eviction paths test the gate, so the disabled cost is a few
 *    relaxed loads per miss, not per access (measured by
 *    `perf_regress --trace-overhead`).
 */

#ifndef ADCACHE_OBS_TRACE_HH
#define ADCACHE_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.hh"

namespace adcache::obs
{

#if defined(ADCACHE_TRACE_COMPILED)
inline constexpr bool kTraceCompiled = true;
#else
inline constexpr bool kTraceCompiled = false;
#endif

namespace detail
{
extern std::atomic<bool> traceOn;
extern std::atomic<bool> latencyOn;
} // namespace detail

/** Is decision-event tracing live right now? Branchless-cheap; the
 *  whole call folds to `false` when tracing is compiled out. */
inline bool
traceEnabled()
{
    if constexpr (!kTraceCompiled)
        return false;
    else
        return detail::traceOn.load(std::memory_order_relaxed);
}

/** Is kv latency sampling live right now? Gated identically to
 *  traceEnabled() but switched independently (ADCACHE_LAT). */
inline bool
latencyEnabled()
{
    if constexpr (!kTraceCompiled)
        return false;
    else
        return detail::latencyOn.load(std::memory_order_relaxed);
}

/** Flip the runtime trace gate. No-op when compiled out. */
void setTraceEnabled(bool on);

/** Flip the runtime latency gate. No-op when compiled out. */
void setLatencyEnabled(bool on);

/**
 * Record one event into the calling thread's ring. Call only inside
 * an `if (traceEnabled())` block; when tracing is compiled out this
 * is never reached (and compiles to nothing useful anyway).
 */
void emit(const TraceEvent &ev);

/**
 * Collect every buffered event from every thread's ring, stably
 * sorted by logical time (ties keep per-ring order). Consumes the
 * buffered events.
 */
std::vector<TraceEvent> drainAll();

/** Sum of per-ring drop counters since the last resetTrace(). */
std::uint64_t droppedTotal();

/** Per-ring drop counters (index = ring creation order since the
 *  last resetTrace()). Feeds the metrics registry so silent trace
 *  loss is scrapeable live, not just a JSONL header footnote. */
std::vector<std::uint64_t> perRingDrops();

/** Capacity used for rings created after this call (min 2, rounded
 *  up to a power of two). Existing rings keep their size. */
void setRingCapacity(std::size_t capacity);

/**
 * Forget all rings, spans, drop counts, and thread ids. Invalidates
 * every thread's cached ring pointer (they re-attach on next emit).
 * Intended for tests and between benchmark rounds.
 */
void resetTrace();

/** A wall-clock interval, e.g. one experiment-runner job. */
struct Span
{
    std::string name;
    std::uint32_t tid = 0;
    std::uint64_t t0Ns = 0;
    std::uint64_t t1Ns = 0;
};

/** Append one finished span to the global span log (mutex-guarded;
 *  spans are rare — one per job, not per access). */
void recordSpan(Span span);

/** Move out all recorded spans, ordered by start time. */
std::vector<Span> drainSpans();

/** Small dense id of the calling thread (0, 1, 2, ... in first-use
 *  order since the last resetTrace()). */
std::uint32_t currentTid();

/** Monotonic wall clock, nanoseconds. */
std::uint64_t nowNs();

/**
 * RAII span: records [construction, destruction) under @p name when
 * tracing was enabled at construction; free otherwise.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(std::string name)
    {
        if (traceEnabled()) {
            name_ = std::move(name);
            t0_ = nowNs();
            live_ = true;
        }
    }

    ~ScopedSpan()
    {
        if (live_)
            recordSpan({std::move(name_), currentTid(), t0_, nowNs()});
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    std::string name_;
    std::uint64_t t0_ = 0;
    bool live_ = false;
};

/**
 * Measure the marginal cost of one disabled `traceEnabled()` check,
 * in nanoseconds (>= 0; clamped). Used by the perf_regress overhead
 * gate, see bench/perf_regress.cc.
 */
double measureGateCostNs();

} // namespace adcache::obs

#endif // ADCACHE_OBS_TRACE_HH
