#include "obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

#include "obs/ring.hh"
#include "util/logging.hh"

namespace adcache::obs
{

namespace detail
{
std::atomic<bool> traceOn{false};
std::atomic<bool> latencyOn{false};
} // namespace detail

namespace
{

constexpr std::size_t kDefaultRingCapacity = std::size_t(1) << 16;

/**
 * All live rings and spans. Rings are shared_ptr-owned here so a
 * ring outlives its producing thread (pool workers exit before the
 * main thread drains). A global epoch invalidates the thread-local
 * caches: resetTrace() bumps it, and each thread re-attaches a fresh
 * ring / tid on its next use.
 */
struct TraceState
{
    std::mutex mtx;
    std::vector<std::shared_ptr<EventRing>> rings;
    std::vector<Span> spans;
    std::atomic<std::uint64_t> epoch{1};
    std::atomic<std::uint32_t> nextTid{0};
    std::atomic<std::size_t> ringCapacity{kDefaultRingCapacity};
};

TraceState &
state()
{
    static TraceState s;
    return s;
}

struct ThreadRingCache
{
    std::uint64_t epoch = 0;
    EventRing *ring = nullptr;
};

struct ThreadTidCache
{
    std::uint64_t epoch = 0;
    std::uint32_t tid = 0;
};

thread_local ThreadRingCache tl_ring;
thread_local ThreadTidCache tl_tid;

EventRing &
threadRing()
{
    TraceState &s = state();
    const std::uint64_t epoch =
        s.epoch.load(std::memory_order_acquire);
    if (tl_ring.epoch != epoch || tl_ring.ring == nullptr) {
        auto ring = std::make_shared<EventRing>(
            s.ringCapacity.load(std::memory_order_relaxed));
        {
            std::lock_guard<std::mutex> lock(s.mtx);
            s.rings.push_back(ring);
        }
        tl_ring.ring = ring.get();
        tl_ring.epoch = epoch;
    }
    return *tl_ring.ring;
}

} // namespace

void
setTraceEnabled(bool on)
{
    if constexpr (kTraceCompiled)
        detail::traceOn.store(on, std::memory_order_relaxed);
    else
        (void)on;
}

void
setLatencyEnabled(bool on)
{
    if constexpr (kTraceCompiled)
        detail::latencyOn.store(on, std::memory_order_relaxed);
    else
        (void)on;
}

void
emit(const TraceEvent &ev)
{
    threadRing().tryPush(ev);
}

std::vector<TraceEvent>
drainAll()
{
    TraceState &s = state();
    std::vector<TraceEvent> out;
    {
        std::lock_guard<std::mutex> lock(s.mtx);
        for (auto &ring : s.rings)
            ring->drain(out);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.t < b.t;
                     });
    return out;
}

std::uint64_t
droppedTotal()
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    std::uint64_t total = 0;
    for (auto &ring : s.rings)
        total += ring->dropped();
    return total;
}

std::vector<std::uint64_t>
perRingDrops()
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    std::vector<std::uint64_t> out;
    out.reserve(s.rings.size());
    for (auto &ring : s.rings)
        out.push_back(ring->dropped());
    return out;
}

void
setRingCapacity(std::size_t capacity)
{
    adcache_assert(capacity >= 2);
    state().ringCapacity.store(capacity, std::memory_order_relaxed);
}

void
resetTrace()
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    s.rings.clear();
    s.spans.clear();
    s.nextTid.store(0, std::memory_order_relaxed);
    // Release-publish the new epoch so re-attaching threads observe
    // the cleared registry.
    s.epoch.fetch_add(1, std::memory_order_acq_rel);
}

void
recordSpan(Span span)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    s.spans.push_back(std::move(span));
}

std::vector<Span>
drainSpans()
{
    TraceState &s = state();
    std::vector<Span> out;
    {
        std::lock_guard<std::mutex> lock(s.mtx);
        out.swap(s.spans);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Span &a, const Span &b) {
                         return a.t0Ns < b.t0Ns;
                     });
    return out;
}

std::uint32_t
currentTid()
{
    TraceState &s = state();
    const std::uint64_t epoch =
        s.epoch.load(std::memory_order_acquire);
    if (tl_tid.epoch != epoch) {
        tl_tid.tid =
            s.nextTid.fetch_add(1, std::memory_order_relaxed);
        tl_tid.epoch = epoch;
    }
    return tl_tid.tid;
}

std::uint64_t
nowNs()
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

namespace
{

// Opaque call target for the measurement below: forces the gate to
// compile as a real branch (a call cannot be if-converted), exactly
// like the emit() calls the production gates guard.
__attribute__((noinline)) void
gateCostSink(std::uint64_t v)
{
    asm volatile("" : : "r"(v) : "memory");
}

} // namespace

double
measureGateCostNs()
{
    // Time two otherwise identical loops — one with the disabled
    // gate check in the body — best-of-N each, and report the
    // difference. Both loops carry a serial dependency chain so
    // neither vectorizes, and the gated body guards an opaque call
    // so the check compiles to load + predicted-not-taken branch
    // (a cmov would splice the load into the dependency chain and
    // overstate the cost ~100x vs the real call sites).
    constexpr int kIters = 1 << 20;
    constexpr int kReps = 7;

    auto timeLoop = [](auto body) {
        double best = 1e18;
        for (int rep = 0; rep < kReps; ++rep) {
            const std::uint64_t t0 = nowNs();
            std::uint64_t acc = 1;
            for (int i = 0; i < kIters; ++i)
                acc = body(acc, i);
            asm volatile("" : : "r"(acc) : "memory");
            const std::uint64_t t1 = nowNs();
            best = std::min(best, double(t1 - t0));
        }
        return best / kIters;
    };

    const double plain =
        timeLoop([](std::uint64_t acc, int i) -> std::uint64_t {
            return acc * 2654435761u + unsigned(i);
        });
    const double gated =
        timeLoop([](std::uint64_t acc, int i) -> std::uint64_t {
            const std::uint64_t v = acc * 2654435761u + unsigned(i);
            if (traceEnabled())
                gateCostSink(v);
            return v;
        });
    return std::max(0.0, gated - plain);
}

} // namespace adcache::obs
