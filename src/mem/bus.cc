#include "mem/bus.hh"

#include "util/logging.hh"

namespace adcache
{

SplitTransactionBus::SplitTransactionBus(const BusConfig &config)
    : config_(config)
{
    adcache_assert(config.bytesPerBeat >= 1);
    adcache_assert(config.cpuCyclesPerBeat >= 1);
}

Cycle
SplitTransactionBus::transferCycles(unsigned bytes) const
{
    const unsigned beats =
        (bytes + config_.bytesPerBeat - 1) / config_.bytesPerBeat;
    return Cycle(beats) * config_.cpuCyclesPerBeat;
}

Cycle
SplitTransactionBus::acquire(Cycle earliest, unsigned bytes)
{
    const Cycle start = earliest > freeAt_ ? earliest : freeAt_;
    queueCycles_ += start - earliest;
    const Cycle duration = transferCycles(bytes);
    freeAt_ = start + duration;
    busyCycles_ += duration;
    ++transactions_;
    return start;
}

} // namespace adcache
