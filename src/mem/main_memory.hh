/**
 * @file
 * Main memory behind the split-transaction bus. Reads return a
 * completion time (when the requested line has arrived at the L2);
 * writebacks are fire-and-forget but consume bus bandwidth, so heavy
 * dirty-eviction traffic delays demand fills — one of the effects the
 * paper's store-buffer experiments (Fig. 10) exercise.
 */

#ifndef ADCACHE_MEM_MAIN_MEMORY_HH
#define ADCACHE_MEM_MAIN_MEMORY_HH

#include <string>

#include "mem/bus.hh"

namespace adcache
{

class StatRegistry;

/** Configuration of the memory + bus back end. */
struct MemoryConfig
{
    /**
     * DRAM access latency in CPU cycles. Table 1 lists the memory
     * latency and a 15-cycle L2; mid-2000s studies put the round trip
     * in the low hundreds of cycles, so the default is 120.
     */
    Cycle accessLatency = 120;
    BusConfig bus;
};

/** Statistics of the memory back end. */
struct MemoryStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    Cycle busBusyCycles = 0;
    Cycle busQueueCycles = 0;

    /** Register every counter under "<prefix><name>". */
    void registerInto(StatRegistry &reg,
                      const std::string &prefix) const;
};

/** The DRAM + bus model. */
class MainMemory
{
  public:
    explicit MainMemory(const MemoryConfig &config);

    /**
     * Fetch a line of @p bytes. The address phase arbitrates for the
     * bus, DRAM takes accessLatency, then the data phase streams the
     * line back over the bus.
     * @return CPU cycle at which the full line is available.
     */
    Cycle readLine(Cycle now, unsigned bytes);

    /**
     * Write a line back. Occupies the bus for the data transfer;
     * the caller does not wait.
     * @return CPU cycle at which the transfer completes.
     */
    Cycle writeLine(Cycle now, unsigned bytes);

    MemoryStats stats() const;

    const MemoryConfig &config() const { return config_; }

  private:
    MemoryConfig config_;
    SplitTransactionBus bus_;
    MemoryStats stats_;
};

} // namespace adcache

#endif // ADCACHE_MEM_MAIN_MEMORY_HH
