#include "mem/main_memory.hh"

#include "util/stat_registry.hh"

namespace adcache
{

MainMemory::MainMemory(const MemoryConfig &config)
    : config_(config), bus_(config.bus)
{
}

Cycle
MainMemory::readLine(Cycle now, unsigned bytes)
{
    ++stats_.reads;
    // Split transaction: the address phase uses its own narrow
    // request channel (one beat, never blocked by in-flight data),
    // so independent misses overlap in DRAM — the data phases then
    // serialise on the shared data bus. This is what bounds
    // memory-level parallelism by bandwidth rather than latency.
    const Cycle dram_done =
        now + config_.bus.cpuCyclesPerBeat + config_.accessLatency;
    const Cycle data_start = bus_.acquire(dram_done, bytes);
    return data_start + bus_.transferCycles(bytes);
}

Cycle
MainMemory::writeLine(Cycle now, unsigned bytes)
{
    ++stats_.writes;
    const Cycle start = bus_.acquire(now, bytes);
    return start + bus_.transferCycles(bytes);
}

MemoryStats
MainMemory::stats() const
{
    MemoryStats s = stats_;
    s.busBusyCycles = bus_.busyCycles();
    s.busQueueCycles = bus_.queueCycles();
    return s;
}

void
MemoryStats::registerInto(StatRegistry &reg,
                          const std::string &prefix) const
{
    reg.counter(prefix + "reads", reads);
    reg.counter(prefix + "writes", writes);
    reg.counter(prefix + "bus_busy_cycles", busBusyCycles);
    reg.counter(prefix + "bus_queue_cycles", busQueueCycles);
}

} // namespace adcache
