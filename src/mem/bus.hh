/**
 * @file
 * The processor-memory bus of Table 1: 8-byte-wide, split-transaction,
 * clocked at 1/8 of the core frequency. Modelled as a single shared
 * resource whose occupancy creates queuing delay — the mechanism that
 * limits memory-level parallelism when misses cluster.
 */

#ifndef ADCACHE_MEM_BUS_HH
#define ADCACHE_MEM_BUS_HH

#include <cstdint>

#include "util/types.hh"

namespace adcache
{

/** Configuration of the split-transaction bus. */
struct BusConfig
{
    unsigned bytesPerBeat = 8;  //!< bus width (Table 1: 8B)
    unsigned cpuCyclesPerBeat = 8;  //!< CPU:bus frequency ratio 8:1
};

/** A single-master-at-a-time bus with FIFO arbitration. */
class SplitTransactionBus
{
  public:
    explicit SplitTransactionBus(const BusConfig &config);

    /**
     * Reserve the bus for a transfer.
     * @param earliest request time (CPU cycles).
     * @param bytes    payload size.
     * @return cycle at which the transfer *starts* (>= earliest).
     *
     * The bus is then busy until start + transferCycles(bytes).
     */
    Cycle acquire(Cycle earliest, unsigned bytes);

    /** CPU cycles needed to move @p bytes across the bus. */
    Cycle transferCycles(unsigned bytes) const;

    /** Next cycle at which the bus is free. */
    Cycle freeAt() const { return freeAt_; }

    /** Total cycles of bus occupancy so far. */
    Cycle busyCycles() const { return busyCycles_; }

    /** Total cycles requests spent waiting for the bus. */
    Cycle queueCycles() const { return queueCycles_; }

    std::uint64_t transactions() const { return transactions_; }

  private:
    BusConfig config_;
    Cycle freeAt_ = 0;
    Cycle busyCycles_ = 0;
    Cycle queueCycles_ = 0;
    std::uint64_t transactions_ = 0;
};

} // namespace adcache

#endif // ADCACHE_MEM_BUS_HH
