#include "kv/read_path.hh"

#include <mutex>
#include <vector>

#include "util/bits.hh"

namespace adcache::kv
{

EpochDomain &
EpochDomain::instance()
{
    static EpochDomain domain;
    return domain;
}

namespace
{

/** Slot id free list: allocation happens once per thread lifetime,
 *  so a mutex is fine here — the probe path never touches it. */
std::mutex slot_mutex;
std::vector<int> free_slots;
int next_fresh_slot = 0;

int
acquireSlot()
{
    std::scoped_lock lock(slot_mutex);
    if (!free_slots.empty()) {
        const int id = free_slots.back();
        free_slots.pop_back();
        return id;
    }
    if (next_fresh_slot < int(EpochDomain::kMaxSlots))
        return next_fresh_slot++;
    return -1;
}

void
releaseSlot(int id)
{
    std::scoped_lock lock(slot_mutex);
    free_slots.push_back(id);
}

/** Returns the slot at thread exit so test binaries that spawn many
 *  short-lived reader threads never exhaust the supply. */
struct SlotLease
{
    int id = -1;

    ~SlotLease()
    {
        if (id >= 0) {
            EpochDomain::instance().unpin(id);
            releaseSlot(id);
        }
    }
};

} // namespace

int
EpochDomain::threadSlot()
{
    thread_local SlotLease lease{acquireSlot()};
    return lease.id;
}

bool
EpochDomain::tryAdvance()
{
    std::uint64_t cur = epoch_.load(std::memory_order_seq_cst);
    for (const Slot &s : slots_) {
        const std::uint64_t pinned =
            s.epoch.load(std::memory_order_seq_cst);
        if (pinned != 0 && pinned != cur)
            return false;
    }
    // A lost race means someone else advanced; either way the epoch
    // moved past `cur`, which is all retirees care about.
    return epoch_.compare_exchange_strong(
        cur, cur + 1, std::memory_order_seq_cst,
        std::memory_order_seq_cst);
}

TouchRing::TouchRing(unsigned capacity)
{
    unsigned cap = 2;
    while (cap < capacity && cap < (1u << 20))
        cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (unsigned i = 0; i < cap; ++i)
        cells_[i].seq.store(i, std::memory_order_relaxed);
}

bool
TouchRing::tryPush(KvKey key, std::uint64_t hash)
{
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
        Cell &c = cells_[pos & mask_];
        const std::uint64_t seq =
            c.seq.load(std::memory_order_acquire);
        const std::int64_t dif = std::int64_t(seq - pos);
        if (dif == 0) {
            if (head_.compare_exchange_weak(
                    pos, pos + 1, std::memory_order_relaxed)) {
                c.touch.key = key;
                c.touch.hash = hash;
                c.seq.store(pos + 1, std::memory_order_release);
                return true;
            }
        } else if (dif < 0) {
            return false; // the slot is still awaiting the consumer
        } else {
            pos = head_.load(std::memory_order_relaxed);
        }
    }
}

} // namespace adcache::kv
