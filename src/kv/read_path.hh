/**
 * @file
 * Primitives of the kv cache's lock-free read path
 * (docs/KVCACHE.md "Concurrency model"):
 *
 *  - EpochDomain / EpochGuard: a process-wide three-epoch
 *    reclamation domain. A reader pins its per-thread slot to the
 *    global epoch for the duration of one optimistic probe; writers
 *    retire unlinked entries (and replaced value strings) tagged
 *    with the epoch current at unlink time and free a batch only
 *    once the global epoch has advanced twice past it — by then no
 *    pinned reader can still hold a path to the retired node.
 *    The epoch advances only when every pinned slot has caught up
 *    with the current epoch (gated advance), so a single load of
 *    the global epoch bounds what any active reader may reference.
 *
 *  - TouchRing: a bounded multi-producer single-consumer queue of
 *    deferred LRU/LFU touches. Lock-free readers record hits here
 *    instead of mutating the intrusive component lists; the shard
 *    drains the ring FIFO under its mutex at the head of every
 *    mutating operation. Capacity bounds the rank staleness: an
 *    entry touched K accesses ago is never ranked older than
 *    K + capacity positions (tests/kv/kv_touch_test.cc).
 *
 * Memory-order discipline: every atomic the probe path and the
 * reclamation protocol share uses seq_cst. The loads are free on
 * x86/ARM-acquire hardware and the stores sit on rare writer paths;
 * in exchange the correctness argument is a single total order (the
 * unlink store precedes the epoch load that tags the retirement,
 * which precedes the epoch CAS any later-pinned reader observed —
 * so that reader's chain walk reads the post-unlink pointers), and
 * ThreadSanitizer models it without standalone fences.
 */

#ifndef ADCACHE_KV_READ_PATH_HH
#define ADCACHE_KV_READ_PATH_HH

#include <atomic>
#include <cstdint>
#include <memory>

#include "kv/kv_types.hh"

namespace adcache::kv
{

/** Process-wide epoch-based reclamation domain (see file comment). */
class EpochDomain
{
  public:
    /** Per-thread reader slots; threads past the supply fall back to
     *  the mutex read path (EpochGuard::engaged() == false). */
    static constexpr unsigned kMaxSlots = 64;

    static EpochDomain &instance();

    /**
     * The calling thread's slot index, or -1 when the slot supply is
     * exhausted. Allocated on first use, returned at thread exit.
     */
    static int threadSlot();

    /** Pin @p slot to the current epoch. @return that epoch. */
    std::uint64_t
    pin(int slot)
    {
        auto &e = slots_[slot].epoch;
        std::uint64_t cur = epoch_.load(std::memory_order_relaxed);
        for (;;) {
            // Publish the claim, then confirm the epoch did not move
            // past it (the store and the re-load are both seq_cst, so
            // a concurrent gated advance either sees this slot or is
            // seen by the re-load).
            e.store(cur, std::memory_order_seq_cst);
            const std::uint64_t now =
                epoch_.load(std::memory_order_seq_cst);
            if (now == cur)
                return cur;
            cur = now;
        }
    }

    void
    unpin(int slot)
    {
        slots_[slot].epoch.store(0, std::memory_order_seq_cst);
    }

    std::uint64_t
    current() const
    {
        return epoch_.load(std::memory_order_seq_cst);
    }

    /**
     * Advance the global epoch iff every pinned slot is at it.
     * @return true iff the epoch moved.
     */
    bool tryAdvance();

  private:
    EpochDomain() = default;

    struct alignas(64) Slot
    {
        std::atomic<std::uint64_t> epoch{0}; //!< 0 = not pinned
    };

    /** Epochs start at 2 so slot value 0 can mean "unpinned". */
    std::atomic<std::uint64_t> epoch_{2};
    Slot slots_[kMaxSlots];

    friend class EpochGuard;
};

/** RAII reader pin. Probe lock-free only while engaged(). */
class EpochGuard
{
  public:
    EpochGuard() : slot_(EpochDomain::threadSlot())
    {
        if (slot_ >= 0)
            epoch_ = EpochDomain::instance().pin(slot_);
    }

    ~EpochGuard()
    {
        if (slot_ >= 0)
            EpochDomain::instance().unpin(slot_);
    }

    EpochGuard(const EpochGuard &) = delete;
    EpochGuard &operator=(const EpochGuard &) = delete;

    /** False when the thread-slot supply ran out: use the mutex. */
    bool engaged() const { return slot_ >= 0; }

    std::uint64_t epoch() const { return epoch_; }

  private:
    int slot_;
    std::uint64_t epoch_ = 0;
};

/** One deferred touch: a key and its full hash (so the drain can
 *  re-locate the entry without re-hashing). */
struct DeferredTouch
{
    KvKey key = 0;
    std::uint64_t hash = 0;
};

/**
 * Bounded MPSC ring of deferred touches (Vyukov bounded-queue cell
 * sequencing). Producers (lock-free readers) tryPush concurrently;
 * the single consumer drains under the shard mutex. A full ring
 * makes the reader fall into the mutex slow path, which drains and
 * applies the touch eagerly — so capacity is exactly the staleness
 * bound, never a correctness concern.
 */
class TouchRing
{
  public:
    /** @p capacity is rounded up to a power of two, minimum 2. */
    explicit TouchRing(unsigned capacity);

    TouchRing(const TouchRing &) = delete;
    TouchRing &operator=(const TouchRing &) = delete;

    /** @return false iff the ring is full (caller goes slow). */
    bool tryPush(KvKey key, std::uint64_t hash);

    /**
     * Pop every published record FIFO into @p fn(key, hash). Single
     * consumer: callers must hold the owning shard's mutex.
     * @return the number of records applied.
     */
    template <typename Fn>
    std::size_t
    drain(Fn &&fn)
    {
        std::size_t n = 0;
        for (;;) {
            Cell &c = cells_[tail_ & mask_];
            // A producer publishes by bumping the cell sequence to
            // pos + 1; stopping at the first unpublished cell keeps
            // the drain FIFO even when a claimant is mid-write.
            if (c.seq.load(std::memory_order_acquire) != tail_ + 1)
                break;
            const KvKey key = c.touch.key;
            const std::uint64_t hash = c.touch.hash;
            c.seq.store(tail_ + mask_ + 1,
                        std::memory_order_release);
            ++tail_;
            fn(key, hash);
            ++n;
        }
        return n;
    }

    unsigned capacity() const { return mask_ + 1; }

  private:
    struct Cell
    {
        std::atomic<std::uint64_t> seq{0};
        DeferredTouch touch;
    };

    std::unique_ptr<Cell[]> cells_;
    unsigned mask_;
    alignas(64) std::atomic<std::uint64_t> head_{0}; //!< producers
    alignas(64) std::uint64_t tail_ = 0; //!< consumer (under mutex)
};

} // namespace adcache::kv

#endif // ADCACHE_KV_READ_PATH_HH
