/**
 * @file
 * One lock domain of the adaptive kv cache: a hash table of
 * key-value entries whose replacement is the paper's Algorithm 1
 * re-hosted on software structures.
 *
 * In EvictionScope::Shard (production) the shard keeps an intrusive
 * recency list and O(1) LFU frequency lists over every resident
 * entry (both components' metadata alive at all times, the Sec. 4.7
 * follower idea), while a sampled set of leader buckets carries
 * partial-hash shadow directories whose differentiating misses train
 * one per-shard m-bit selector. Victim selection mirrors Algorithm 1
 * case by case:
 *
 *   1. directed — the winner's shadow displaced a tag this reference
 *      and a resident entry of the bucket folds to it: evict it;
 *   2. policy   — the winner component's own eviction order over the
 *      real contents, walked at most bucketWays deep to skip pinned
 *      entries (the software analog of the associativity-bounded
 *      search);
 *   3. fallback — pins defeated both searches (the aliasing case of
 *      Sec. 3.1): a rotating cursor picks an arbitrary unpinned
 *      entry; if everything is pinned the insertion is rejected.
 *
 * In EvictionScope::Bucket (verification) every bucket is a
 * fixed-capacity set with its own shadow directories and history and
 * the three cases are transcribed verbatim from AdaptiveCache —
 * this configuration is lockstep-diffed against the oracle
 * RefAdaptiveCache (src/oracle/kv_lockstep.hh).
 *
 * Mutating operations are externally synchronized (AdaptiveKvCache
 * wraps each shard in its own mutex). In Shard scope with
 * lockFreeReads, the read-only surface — tryProbe / containsRelaxed
 * / trySetPinned — may additionally run WITHOUT the mutex from any
 * thread holding an EpochGuard; see docs/KVCACHE.md "Concurrency
 * model" for the protocol (per-bucket seqlock validation, deferred
 * touches, epoch-based reclamation).
 */

#ifndef ADCACHE_KV_KV_SHARD_HH
#define ADCACHE_KV_KV_SHARD_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adapt/imitation.hh"
#include "adapt/selector.hh"
#include "adapt/sketch.hh"
#include "kv/kv_types.hh"
#include "kv/policy_lists.hh"
#include "kv/read_path.hh"
#include "kv/shadow_dir.hh"
#include "obs/event.hh"
#include "util/rng.hh"

namespace adcache
{
class StatRegistry;
}

namespace adcache::kv
{

/** Per-shard event counters. */
struct KvShardStats
{
    std::uint64_t references = 0; //!< filling references (fetch/put)
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t gets = 0; //!< non-filling probes
    std::uint64_t getHits = 0;
    std::uint64_t inserts = 0;
    std::uint64_t updates = 0;
    std::uint64_t evictions = 0;
    std::uint64_t directedEvictions = 0;
    std::uint64_t fallbackEvictions = 0;
    std::uint64_t rejected = 0;
    std::uint64_t admitRejects = 0; //!< TinyLFU refused the candidate
    std::uint64_t erases = 0;
    std::uint64_t expirations = 0; //!< lazy TTL removals
    std::uint64_t readRetries = 0; //!< optimistic probe re-walks
    std::uint64_t slowProbes = 0;  //!< gets that took the mutex
    std::uint64_t diffMisses = 0;  //!< leader refs where components
                                   //!< disagreed (drift signal)
    std::uint64_t decisions[kvNumComponents] = {0, 0};

    void add(const KvShardStats &o);

    /** Combined hit rate over filling references and probes. */
    double hitRate() const;
};

/** Resolved per-shard configuration. */
struct KvShardConfig
{
    std::uint64_t capacity = 8 * 1024; //!< entries (Shard scope)
    unsigned numBuckets = 1024;
    unsigned bucketWays = 8;
    unsigned leaderEvery = 8;
    unsigned shadowTagBits = 16;
    bool xorFoldTags = false;
    unsigned historyDepth = 64; //!< resolved, nonzero
    bool exactCounters = false;
    EvictionScope scope = EvictionScope::Shard;
    SelectorMode selector = SelectorMode::Adaptive;
    KvComponentSpec components[kvNumComponents] = {
        {PolicyType::LRU, false}, {PolicyType::LFU, false}};
    unsigned hashShift = 0; //!< hash bits consumed by shard selection
    unsigned shardIndex = 0; //!< position in the owning cache
    std::uint64_t rngSeed = 1;
    bool lockFreeReads = true; //!< effective only in Shard scope
    unsigned touchCapacity = 256; //!< deferred-touch ring size

    /** TTL clock (logical ticks), owned by the facade and shared by
     *  every shard; null = entries never expire regardless of their
     *  stamp. Set by AdaptiveKvCache after fromCache(). */
    const std::atomic<std::uint64_t> *clock = nullptr;

    /** Shard @p shard_index's slice of @p config. */
    static KvShardConfig fromCache(const KvConfig &config,
                                   unsigned shard_index);
};

/** One shard (see file comment). Externally synchronized. */
class KvShard
{
  public:
    explicit KvShard(const KvShardConfig &config);
    ~KvShard();

    KvShard(const KvShard &) = delete;
    KvShard &operator=(const KvShard &) = delete;

    /**
     * One filling reference: lookup; on a miss, admit the value
     * produced by @p make_value (called at most once), evicting per
     * Algorithm 1 if needed.
     *
     * @param h         full key hash (shard selection uses its low
     *                  hashShift bits; this shard uses the rest).
     * @param overwrite on a hit, replace the stored value (put
     *                  semantics); false = fetch semantics.
     * @param pin       pin the entry (on insert or hit).
     * @param value_out if non-null, receives the resident (or, when
     *                  rejected, the freshly produced) value.
     * @param ttl       expiry horizon in clock ticks (0 = never).
     *                  Stamped on insert and refreshed by overwriting
     *                  hits; an entry whose stamp has lapsed is
     *                  unlinked on contact and treated as a miss.
     */
    KvOutcome reference(KvKey key, std::uint64_t h,
                        const std::function<std::string()> &make_value,
                        bool overwrite, bool pin,
                        std::string *value_out = nullptr,
                        std::uint64_t ttl = 0);

    /**
     * Non-filling probe: promotes and counts on a hit, never inserts
     * and never trains the adaptivity machinery. Returned pointer is
     * valid until the next mutating call. Requires the shard mutex.
     *
     * @param retries optimistic re-walks a preceding tryProbe spent
     *                before falling back here (accounted as
     *                readRetries; also emits the kv_read_retry
     *                event when tracing is on).
     */
    const std::string *probe(KvKey key, std::uint64_t h,
                             unsigned retries = 0);

    /** What one optimistic (mutex-free) probe concluded. */
    enum class ProbeResult
    {
        Hit,            //!< value copied out, touch deferred
        Miss,           //!< validated miss
        NeedTouchDrain, //!< hit copied out, but the ring was full:
                        //!< take the mutex and call touchSlow()
        NeedSlow,       //!< conflicts exhausted the retry budget:
                        //!< take the mutex and call probe()
    };

    /**
     * Lock-free probe attempt. Caller must hold an engaged
     * EpochGuard and must NOT hold the shard mutex. Only valid when
     * lockFreeEnabled(). Hits and validated misses are fully
     * accounted here; the two Need* results defer to the locked
     * calls named above.
     */
    ProbeResult tryProbe(KvKey key, std::uint64_t h,
                         std::string *value_out,
                         unsigned *retries_out);

    /**
     * Complete a tryProbe() == NeedTouchDrain hit: drain the ring
     * and apply this hit's promotion eagerly. Requires the mutex.
     */
    void touchSlow(KvKey key, std::uint64_t h);

    /**
     * Lock-free membership attempt under an engaged EpochGuard:
     * 1 = resident, 0 = validated absent, -1 = conflict (retry
     * under the mutex via contains()).
     */
    int containsRelaxed(KvKey key, std::uint64_t h) const;

    /**
     * Lock-free pin/unpin attempt under an engaged EpochGuard:
     * 1 = done, 0 = validated absent (or the entry is mid-eviction,
     * which linearizes after its removal), -1 = conflict (retry
     * under the mutex via setPinned()).
     */
    int trySetPinned(KvKey key, std::uint64_t h, bool pinned);

    /** True iff the mutex-free read surface is active. */
    bool
    lockFreeEnabled() const
    {
        return config_.lockFreeReads &&
               config_.scope == EvictionScope::Shard;
    }

    /** Remove @p key. @return true iff it was resident. */
    bool erase(KvKey key, std::uint64_t h);

    /** Pin or unpin @p key. @return true iff it was resident. */
    bool setPinned(KvKey key, std::uint64_t h, bool pinned);

    /** Membership without promotion or stats. */
    bool contains(KvKey key, std::uint64_t h) const;

    std::size_t size() const { return size_; }
    std::uint64_t capacity() const;
    std::uint64_t
    pinnedCount() const
    {
        return pinned_.load(std::memory_order_seq_cst);
    }

    /** Counter snapshot: the mutex-owned counters plus the atomics
     *  the lock-free read path maintains, folded together. */
    KvShardStats stats() const;
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

    /** True iff @p bucket carries shadow directories. */
    bool isLeader(unsigned bucket) const;

    /** Misses of component @p k's shadow directories (0 if none). */
    std::uint64_t shadowMisses(unsigned k) const;

    /** Selection flips, summed over this shard's selectors. */
    std::uint64_t selectionFlips() const;

    /** Current winner of @p bucket's selection domain. */
    unsigned currentWinner(unsigned bucket = 0) const;

    /** History weight of component @p k in @p bucket's domain. */
    std::uint64_t historyCount(unsigned bucket, unsigned k) const;

    /** All resident keys (unordered). */
    std::vector<KvKey> residentKeys() const;

    const KvShardConfig &config() const { return config_; }

  private:
    struct alignas(64) Bucket
    {
        /** Shard-scope hash chain head (readers traverse it). */
        std::atomic<KvEntry *> chain{nullptr};
        /** Per-bucket seqlock: odd while a writer restructures the
         *  chain. Readers use it to validate misses and bound their
         *  optimism; hits never need it (see tryProbe). */
        std::atomic<std::uint32_t> seq{0};
    };

    /** One unit of deferred reclamation (see EpochDomain). */
    struct Retired
    {
        std::uint64_t epoch = 0;
        KvEntry *entry = nullptr;         //!< exclusive-or
        const std::string *str = nullptr; //!< ... with entry
    };

    /** adapt::imitateVictim views (defined in kv_shard.cc). */
    class BucketScopeView;
    class ShardScopeView;

    unsigned bucketOf(std::uint64_t h) const;
    std::uint64_t tagOf(std::uint64_t h) const;

    /** Selection domain of @p bucket (per bucket, or the shard). */
    unsigned
    domainOf(unsigned bucket) const
    {
        return config_.scope == EvictionScope::Bucket ? bucket : 0;
    }

    /** Admission-filter key of a key tag: the shadow-folded tag, so
     *  filter and directories agree on item identity; raw tags when
     *  no directories exist (fixed selectors). */
    std::uint64_t admitKey(std::uint64_t tag) const;

    KvEntry *findChain(unsigned bucket, KvKey key) const;
    KvEntry *findSlot(unsigned bucket, KvKey key,
                      unsigned *way) const;
    KvEntry *find(unsigned bucket, KvKey key, unsigned *way) const;

    /** Current TTL clock reading (0 when no clock is wired). */
    std::uint64_t nowTick() const;

    /** True iff @p e's stamp has lapsed. Reads the clock BEFORE the
     *  stamp so a true verdict proves the entry was expired at the
     *  instant of the stamp load (the clock is monotonic). */
    bool isExpired(const KvEntry *e) const;

    KvEntry *bucketVictim(unsigned bucket, unsigned winner,
                          const ShadowOutcome &winner_out,
                          unsigned *way_out,
                          adapt::VictimCase &case_out);
    KvEntry *shardVictim(unsigned bucket, bool leader,
                         unsigned winner,
                         const ShadowOutcome &winner_out,
                         adapt::VictimCase &case_out);
    void unlinkEntry(KvEntry *e);

    /** Apply every pending deferred touch FIFO (mutex held). Runs
     *  at the head of each mutating operation, so single-threaded
     *  execution is indistinguishable from eager promotion. */
    void drainTouches();

    /** Promote @p e in both component orders (mutex held). */
    void promote(KvEntry *e);

    /** Writer-side seqlock brackets (mutex held). */
    void beginBucketChange(unsigned bucket);
    void endBucketChange(unsigned bucket);

    /** Claim @p e for removal: CAS its pin word 0 -> dying. Fails
     *  iff a concurrent (or prior) pin got there first. */
    bool killForRemoval(KvEntry *e);

    /** Swap in a freshly built value, retiring the old string. */
    void setValue(KvEntry *e, std::string &&v);

    void retireEntry(KvEntry *e);
    void retireString(const std::string *s);
    void maybeReclaim(bool force = false);

    KvShardConfig config_;
    Rng rng_;
    unsigned bucketBits_;
    std::unique_ptr<Bucket[]> buckets_;
    std::vector<std::vector<KvEntry *>> slots_; //!< Bucket scope
    RecencyList recency_;                       //!< Shard scope
    LfuLists lfu_;                              //!< Shard scope
    /** Shared TinyLFU filter (declared before the directories that
     *  point at it). Present iff some component has admission. */
    std::unique_ptr<adapt::TinyLfuAdmission> admission_;
    std::unique_ptr<KvShadowDir> shadows_[kvNumComponents];
    adapt::Selector selector_; //!< domains: buckets, or the shard
    std::vector<unsigned> fallbackPtr_; //!< Bucket scope, per bucket
    unsigned fallbackBucket_ = 0;       //!< Shard scope cursor
    std::size_t size_ = 0;
    std::atomic<std::uint64_t> pinned_{0};
    KvShardStats stats_; //!< mutex-owned counters only

    // Lock-free read-path state (Shard scope with lockFreeReads).
    std::unique_ptr<TouchRing> touches_;
    std::vector<Retired> limbo_; //!< mutex-owned retire list
    std::atomic<std::uint64_t> gets_{0};
    std::atomic<std::uint64_t> getHits_{0};
    std::atomic<std::uint64_t> readRetries_{0};
    std::atomic<std::uint64_t> slowProbes_{0};
};

} // namespace adcache::kv

#endif // ADCACHE_KV_KV_SHARD_HH
