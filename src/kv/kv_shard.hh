/**
 * @file
 * One lock domain of the adaptive kv cache: a hash table of
 * key-value entries whose replacement is the paper's Algorithm 1
 * re-hosted on software structures.
 *
 * In EvictionScope::Shard (production) the shard keeps an intrusive
 * recency list and O(1) LFU frequency lists over every resident
 * entry (both components' metadata alive at all times, the Sec. 4.7
 * follower idea), while a sampled set of leader buckets carries
 * partial-hash shadow directories whose differentiating misses train
 * one per-shard m-bit selector. Victim selection mirrors Algorithm 1
 * case by case:
 *
 *   1. directed — the winner's shadow displaced a tag this reference
 *      and a resident entry of the bucket folds to it: evict it;
 *   2. policy   — the winner component's own eviction order over the
 *      real contents, walked at most bucketWays deep to skip pinned
 *      entries (the software analog of the associativity-bounded
 *      search);
 *   3. fallback — pins defeated both searches (the aliasing case of
 *      Sec. 3.1): a rotating cursor picks an arbitrary unpinned
 *      entry; if everything is pinned the insertion is rejected.
 *
 * In EvictionScope::Bucket (verification) every bucket is a
 * fixed-capacity set with its own shadow directories and history and
 * the three cases are transcribed verbatim from AdaptiveCache —
 * this configuration is lockstep-diffed against the oracle
 * RefAdaptiveCache (src/oracle/kv_lockstep.hh).
 *
 * KvShard is NOT thread-safe; AdaptiveKvCache wraps each shard in
 * its own mutex.
 */

#ifndef ADCACHE_KV_KV_SHARD_HH
#define ADCACHE_KV_KV_SHARD_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adapt/imitation.hh"
#include "adapt/selector.hh"
#include "adapt/sketch.hh"
#include "kv/kv_types.hh"
#include "kv/policy_lists.hh"
#include "kv/shadow_dir.hh"
#include "obs/event.hh"
#include "util/rng.hh"

namespace adcache
{
class StatRegistry;
}

namespace adcache::kv
{

/** Per-shard event counters. */
struct KvShardStats
{
    std::uint64_t references = 0; //!< filling references (fetch/put)
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t gets = 0; //!< non-filling probes
    std::uint64_t getHits = 0;
    std::uint64_t inserts = 0;
    std::uint64_t updates = 0;
    std::uint64_t evictions = 0;
    std::uint64_t directedEvictions = 0;
    std::uint64_t fallbackEvictions = 0;
    std::uint64_t rejected = 0;
    std::uint64_t admitRejects = 0; //!< TinyLFU refused the candidate
    std::uint64_t erases = 0;
    std::uint64_t decisions[kvNumComponents] = {0, 0};

    void add(const KvShardStats &o);

    /** Combined hit rate over filling references and probes. */
    double hitRate() const;
};

/** Resolved per-shard configuration. */
struct KvShardConfig
{
    std::uint64_t capacity = 8 * 1024; //!< entries (Shard scope)
    unsigned numBuckets = 1024;
    unsigned bucketWays = 8;
    unsigned leaderEvery = 8;
    unsigned shadowTagBits = 16;
    bool xorFoldTags = false;
    unsigned historyDepth = 64; //!< resolved, nonzero
    bool exactCounters = false;
    EvictionScope scope = EvictionScope::Shard;
    SelectorMode selector = SelectorMode::Adaptive;
    KvComponentSpec components[kvNumComponents] = {
        {PolicyType::LRU, false}, {PolicyType::LFU, false}};
    unsigned hashShift = 0; //!< hash bits consumed by shard selection
    unsigned shardIndex = 0; //!< position in the owning cache
    std::uint64_t rngSeed = 1;

    /** Shard @p shard_index's slice of @p config. */
    static KvShardConfig fromCache(const KvConfig &config,
                                   unsigned shard_index);
};

/** One shard (see file comment). Externally synchronized. */
class KvShard
{
  public:
    explicit KvShard(const KvShardConfig &config);
    ~KvShard();

    KvShard(const KvShard &) = delete;
    KvShard &operator=(const KvShard &) = delete;

    /**
     * One filling reference: lookup; on a miss, admit the value
     * produced by @p make_value (called at most once), evicting per
     * Algorithm 1 if needed.
     *
     * @param h         full key hash (shard selection uses its low
     *                  hashShift bits; this shard uses the rest).
     * @param overwrite on a hit, replace the stored value (put
     *                  semantics); false = fetch semantics.
     * @param pin       pin the entry (on insert or hit).
     * @param value_out if non-null, receives the resident (or, when
     *                  rejected, the freshly produced) value.
     */
    KvOutcome reference(KvKey key, std::uint64_t h,
                        const std::function<std::string()> &make_value,
                        bool overwrite, bool pin,
                        std::string *value_out = nullptr);

    /**
     * Non-filling probe: promotes and counts on a hit, never inserts
     * and never trains the adaptivity machinery. Returned pointer is
     * valid until the next mutating call.
     */
    const std::string *probe(KvKey key, std::uint64_t h);

    /** Remove @p key. @return true iff it was resident. */
    bool erase(KvKey key, std::uint64_t h);

    /** Pin or unpin @p key. @return true iff it was resident. */
    bool setPinned(KvKey key, std::uint64_t h, bool pinned);

    /** Membership without promotion or stats. */
    bool contains(KvKey key, std::uint64_t h) const;

    std::size_t size() const { return size_; }
    std::uint64_t capacity() const;
    std::uint64_t pinnedCount() const { return pinned_; }

    const KvShardStats &stats() const { return stats_; }
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

    /** True iff @p bucket carries shadow directories. */
    bool isLeader(unsigned bucket) const;

    /** Misses of component @p k's shadow directories (0 if none). */
    std::uint64_t shadowMisses(unsigned k) const;

    /** Selection flips, summed over this shard's selectors. */
    std::uint64_t selectionFlips() const;

    /** Current winner of @p bucket's selection domain. */
    unsigned currentWinner(unsigned bucket = 0) const;

    /** History weight of component @p k in @p bucket's domain. */
    std::uint64_t historyCount(unsigned bucket, unsigned k) const;

    /** All resident keys (unordered). */
    std::vector<KvKey> residentKeys() const;

    const KvShardConfig &config() const { return config_; }

  private:
    struct Bucket
    {
        KvEntry *chain = nullptr; //!< Shard-scope hash chain
    };

    /** adapt::imitateVictim views (defined in kv_shard.cc). */
    class BucketScopeView;
    class ShardScopeView;

    unsigned bucketOf(std::uint64_t h) const;
    std::uint64_t tagOf(std::uint64_t h) const;

    /** Selection domain of @p bucket (per bucket, or the shard). */
    unsigned
    domainOf(unsigned bucket) const
    {
        return config_.scope == EvictionScope::Bucket ? bucket : 0;
    }

    /** Admission-filter key of a key tag: the shadow-folded tag, so
     *  filter and directories agree on item identity; raw tags when
     *  no directories exist (fixed selectors). */
    std::uint64_t admitKey(std::uint64_t tag) const;

    KvEntry *findChain(unsigned bucket, KvKey key) const;
    KvEntry *findSlot(unsigned bucket, KvKey key,
                      unsigned *way) const;
    KvEntry *find(unsigned bucket, KvKey key, unsigned *way) const;

    KvEntry *bucketVictim(unsigned bucket, unsigned winner,
                          const ShadowOutcome &winner_out,
                          unsigned *way_out,
                          adapt::VictimCase &case_out);
    KvEntry *shardVictim(unsigned bucket, bool leader,
                         unsigned winner,
                         const ShadowOutcome &winner_out,
                         adapt::VictimCase &case_out);
    void unlinkEntry(KvEntry *e);

    KvShardConfig config_;
    Rng rng_;
    unsigned bucketBits_;
    std::vector<Bucket> buckets_;
    std::vector<std::vector<KvEntry *>> slots_; //!< Bucket scope
    RecencyList recency_;                       //!< Shard scope
    LfuLists lfu_;                              //!< Shard scope
    /** Shared TinyLFU filter (declared before the directories that
     *  point at it). Present iff some component has admission. */
    std::unique_ptr<adapt::TinyLfuAdmission> admission_;
    std::unique_ptr<KvShadowDir> shadows_[kvNumComponents];
    adapt::Selector selector_; //!< domains: buckets, or the shard
    std::vector<unsigned> fallbackPtr_; //!< Bucket scope, per bucket
    unsigned fallbackBucket_ = 0;       //!< Shard scope cursor
    std::size_t size_ = 0;
    std::uint64_t pinned_ = 0;
    KvShardStats stats_;
};

} // namespace adcache::kv

#endif // ADCACHE_KV_KV_SHARD_HH
