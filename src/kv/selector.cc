#include "kv/selector.hh"

namespace adcache::kv
{

KvSelector::KvSelector(SelectorMode mode, bool exact, unsigned depth)
    : mode_(mode)
{
    if (mode_ == SelectorMode::Adaptive)
        history_ = makeHistory(exact, depth, kvNumComponents);
}

bool
KvSelector::record(std::uint32_t miss_mask)
{
    if (!history_)
        return false;
    constexpr std::uint32_t all = (1u << kvNumComponents) - 1;
    if (miss_mask == 0 || miss_mask == all)
        return false;
    history_->record(miss_mask);
    const unsigned now = history_->best(kvNumComponents);
    if (now != lastWinner_) {
        ++flips_;
        lastWinner_ = now;
        return true;
    }
    return false;
}

unsigned
KvSelector::winner() const
{
    switch (mode_) {
      case SelectorMode::FixedLru:
        return kvComponentLru;
      case SelectorMode::FixedLfu:
        return kvComponentLfu;
      case SelectorMode::Adaptive:
        return history_->best(kvNumComponents);
    }
    return kvComponentLru;
}

std::uint64_t
KvSelector::count(unsigned k) const
{
    return history_ ? history_->count(k) : 0;
}

} // namespace adcache::kv
