/**
 * @file
 * Shared types of the concurrent adaptive key-value cache (src/kv):
 * configuration, per-reference outcomes, and the key-hashing scheme
 * that splits a 64-bit key hash into (shard, bucket, tag) fields the
 * same way a hardware cache splits an address into (index, tag).
 *
 * The subsystem re-hosts the paper's Algorithm 1 on software
 * structures. Two eviction scopes are provided:
 *
 *  - EvictionScope::Shard (production): one capacity budget per
 *    shard, an intrusive recency (LRU) list and O(1) LFU frequency
 *    lists spanning the whole shard as component policies, and a
 *    sampled set of leader buckets whose partial-hash shadow
 *    directories train a per-shard m-bit differentiating-miss
 *    selector (the SBAR-style variant of Sec. 4.7).
 *  - EvictionScope::Bucket (verification): every bucket is a
 *    fixed-capacity set with its own shadow directories and history,
 *    i.e. Algorithm 1 transcribed verbatim; this configuration is
 *    lockstep-diffed against the oracle RefAdaptiveCache.
 */

#ifndef ADCACHE_KV_KV_TYPES_HH
#define ADCACHE_KV_KV_TYPES_HH

#include <cstdint>
#include <string>

#include "cache/replacement.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace adcache::kv
{

/** Cache keys are opaque 64-bit values. */
using KvKey = std::uint64_t;

/** How raw keys are spread over (shard, bucket, tag) fields. */
enum class KeyHashKind
{
    Mix,      //!< splitmix64 finalizer (production default)
    Identity, //!< keys used as-is (deterministic tests / lockstep)
};

/** splitmix64 finalizer: the Mix key hash. */
inline std::uint64_t
mixKey(KvKey key)
{
    std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Where the replacement capacity budget lives. */
enum class EvictionScope
{
    Shard,  //!< shard-wide budget, shard-wide component policies
    Bucket, //!< per-bucket ways, Algorithm 1 verbatim (verification)
};

/** Replacement selection mode of a shard. */
enum class SelectorMode
{
    Adaptive, //!< imitate the better component (the paper's engine)
    FixedLru, //!< always evict by recency (baseline)
    FixedLfu, //!< always evict by frequency (baseline)
};

/** Printable selector-mode name. */
const char *selectorModeName(SelectorMode mode);

/** Component ordinals (the paper's headline pair by default). */
constexpr unsigned kvComponentLru = 0;
constexpr unsigned kvComponentLfu = 1;
constexpr unsigned kvNumComponents = 2;

/**
 * One competing component of a shard's selection engine: which pure
 * eviction order it simulates, and whether its fills pass through the
 * shared TinyLFU admission filter. Pitting an admission-on component
 * against its admission-off twin makes the *filter itself* the
 * adapted dimension.
 */
struct KvComponentSpec
{
    PolicyType evict = PolicyType::LRU;
    bool admission = false;
};

/** Printable component label, e.g. "lru" or "lru/adm". */
std::string kvComponentName(const KvComponentSpec &spec);

/** Configuration of an AdaptiveKvCache. */
struct KvConfig
{
    /** Total entry budget across all shards (EvictionScope::Shard).
     *  In Bucket scope capacity is numShards*numBuckets*bucketWays. */
    std::uint64_t capacity = 64 * 1024;

    /** Independent lock domains; power of two. */
    unsigned numShards = 8;

    /** Hash buckets per shard; power of two. */
    unsigned numBuckets = 4096;

    /** Bucket capacity in Bucket scope; in Shard scope the shadow-
     *  directory associativity and the bounded policy-walk depth. */
    unsigned bucketWays = 8;

    /** Every Nth bucket is a leader carrying shadow directories
     *  (1 = all buckets; required in Bucket scope). */
    unsigned leaderEvery = 8;

    /** Stored shadow-tag width in bits (0 = full key tags). */
    unsigned shadowTagBits = 16;

    /** Fold shadow tags by XOR of bit groups instead of low bits. */
    bool xorFoldTags = false;

    /** Differentiating-miss window depth m; 0 selects the scope
     *  default (bucketWays per bucket, 64 per shard). */
    unsigned historyDepth = 0;

    /** Exact since-start counters instead of the m-bit window. */
    bool exactCounters = false;

    EvictionScope scope = EvictionScope::Shard;
    SelectorMode selector = SelectorMode::Adaptive;
    KeyHashKind keyHash = KeyHashKind::Mix;

    /**
     * Serve get()/contains()/pin() hits without the shard mutex
     * (Shard scope only; Bucket scope is the verification shape and
     * stays fully locked). See docs/KVCACHE.md "Concurrency model".
     */
    bool lockFreeReads = true;

    /** Capacity of each shard's deferred-touch ring (rounded up to
     *  a power of two, minimum 2). This is the LRU/LFU staleness
     *  bound of the lock-free read path. */
    unsigned touchCapacity = 256;

    /**
     * The two competing components. Shard scope restricts evict to
     * LRU/LFU (the intrusive shard-wide orders); Bucket scope also
     * admits CmsLfu, whose order lives entirely in the shadow
     * directories' sketch. FixedLru/FixedLfu pin components[0] /
     * components[1] respectively.
     */
    KvComponentSpec components[kvNumComponents] = {
        {PolicyType::LRU, false}, {PolicyType::LFU, false}};

    /** True iff any component fills through the admission filter. */
    bool anyAdmission() const;

    std::uint64_t rngSeed = 1;

    /** panic() on structurally invalid combinations. */
    void validate() const;

    /** Total entries the cache can hold. */
    std::uint64_t totalCapacity() const;

    /** The verification shape: one shard, identity hash, Bucket
     *  scope, all-leader buckets, exact counters — the configuration
     *  the oracle lockstep runs against (docs/KVCACHE.md). */
    static KvConfig lockstep(unsigned num_buckets, unsigned ways,
                             unsigned shadow_tag_bits = 0,
                             bool xor_fold = false);
};

/** Outcome of one filling reference (fetch/put) to the cache. */
struct KvOutcome
{
    bool hit = false;
    bool inserted = false; //!< a new entry was created
    bool updated = false;  //!< an existing value was overwritten
    bool rejected = false; //!< insert refused (all victims pinned)
    bool evicted = false;
    KvKey evictedKey = 0;  //!< valid iff evicted
    bool replaced = false; //!< a replacement decision was made
    unsigned winner = 0;   //!< imitated component (iff replaced)
    bool fallback = false; //!< rotating arbitrary eviction fired
    bool directed = false; //!< shadow-displacement-directed eviction
    /** The winning component's TinyLFU filter refused the candidate:
     *  the resident set is kept and nothing is inserted. */
    bool admitRejected = false;
    /** The key was physically resident but its TTL had lapsed: the
     *  stale entry was unlinked and the reference proceeded as a
     *  miss. */
    bool expired = false;
};

} // namespace adcache::kv

#endif // ADCACHE_KV_KV_TYPES_HH
