#include "kv/policy_lists.hh"

namespace adcache::kv
{

void
RecencyList::pushFront(KvEntry *e)
{
    e->lruPrev = nullptr;
    e->lruNext = head_;
    if (head_)
        head_->lruPrev = e;
    head_ = e;
    if (!tail_)
        tail_ = e;
}

void
RecencyList::moveToFront(KvEntry *e)
{
    if (head_ == e)
        return;
    remove(e);
    pushFront(e);
}

void
RecencyList::remove(KvEntry *e)
{
    if (e->lruPrev)
        e->lruPrev->lruNext = e->lruNext;
    else
        head_ = e->lruNext;
    if (e->lruNext)
        e->lruNext->lruPrev = e->lruPrev;
    else
        tail_ = e->lruPrev;
    e->lruPrev = e->lruNext = nullptr;
}

LfuLists::~LfuLists()
{
    FreqNode *n = nodes_;
    while (n) {
        FreqNode *next = n->next;
        delete n;
        n = next;
    }
}

void
LfuLists::append(FreqNode *node, KvEntry *e)
{
    e->freqNode = node;
    e->lfuNext = nullptr;
    e->lfuPrev = node->tail;
    if (node->tail)
        node->tail->lfuNext = e;
    else
        node->head = e;
    node->tail = e;
}

void
LfuLists::detach(KvEntry *e)
{
    FreqNode *node = e->freqNode;
    adcache_assert(node != nullptr);
    if (e->lfuPrev)
        e->lfuPrev->lfuNext = e->lfuNext;
    else
        node->head = e->lfuNext;
    if (e->lfuNext)
        e->lfuNext->lfuPrev = e->lfuPrev;
    else
        node->tail = e->lfuPrev;
    e->lfuPrev = e->lfuNext = nullptr;
    e->freqNode = nullptr;

    if (!node->head) {
        if (node->prev)
            node->prev->next = node->next;
        else
            nodes_ = node->next;
        if (node->next)
            node->next->prev = node->prev;
        delete node;
    }
}

void
LfuLists::onInsert(KvEntry *e)
{
    if (!nodes_ || nodes_->freq != 1) {
        auto *node = new FreqNode;
        node->freq = 1;
        node->next = nodes_;
        if (nodes_)
            nodes_->prev = node;
        nodes_ = node;
    }
    append(nodes_, e);
}

void
LfuLists::onHit(KvEntry *e)
{
    FreqNode *node = e->freqNode;
    adcache_assert(node != nullptr);

    if (node->freq >= kMaxFreq) {
        // Saturated: refresh recency within the class only.
        if (node->tail != e) {
            FreqNode *keep = node;
            detach(e); // node survives: e was not its only entry
            append(keep, e);
        }
        return;
    }

    const std::uint32_t target_freq = node->freq + 1;
    FreqNode *target =
        (node->next && node->next->freq == target_freq) ? node->next
                                                        : nullptr;
    if (!target) {
        target = new FreqNode;
        target->freq = target_freq;
        target->prev = node;
        target->next = node->next;
        if (node->next)
            node->next->prev = target;
        node->next = target;
    }
    detach(e); // may delete node; target stays linked either way
    append(target, e);
}

void
LfuLists::remove(KvEntry *e)
{
    detach(e);
}

KvEntry *
LfuLists::firstCandidate() const
{
    return nodes_ ? nodes_->head : nullptr;
}

KvEntry *
LfuLists::nextCandidate(const KvEntry *e) const
{
    if (e->lfuNext)
        return e->lfuNext;
    const FreqNode *node = e->freqNode;
    return node->next ? node->next->head : nullptr;
}

} // namespace adcache::kv
