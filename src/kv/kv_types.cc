#include "kv/kv_types.hh"

#include <cctype>

namespace adcache::kv
{

const char *
selectorModeName(SelectorMode mode)
{
    switch (mode) {
      case SelectorMode::Adaptive:
        return "adaptive";
      case SelectorMode::FixedLru:
        return "lru";
      case SelectorMode::FixedLfu:
        return "lfu";
    }
    return "?";
}

std::string
kvComponentName(const KvComponentSpec &spec)
{
    std::string name = policyName(spec.evict);
    for (char &c : name)
        c = char(std::tolower(static_cast<unsigned char>(c)));
    if (spec.admission)
        name += "/adm";
    return name;
}

bool
KvConfig::anyAdmission() const
{
    for (const KvComponentSpec &c : components)
        if (c.admission)
            return true;
    return false;
}

void
KvConfig::validate() const
{
    adcache_assert(isPowerOfTwo(numShards));
    adcache_assert(isPowerOfTwo(numBuckets));
    adcache_assert(bucketWays >= 1);
    adcache_assert(leaderEvery >= 1);
    adcache_assert(shadowTagBits <= 40);
    for (const KvComponentSpec &c : components) {
        // Shard scope walks the intrusive shard-wide orders; CmsLfu
        // has no such order and is a Bucket-scope (shadow-directory)
        // component only.
        if (scope == EvictionScope::Shard)
            adcache_assert(c.evict == PolicyType::LRU ||
                           c.evict == PolicyType::LFU);
        else
            adcache_assert(c.evict == PolicyType::LRU ||
                           c.evict == PolicyType::LFU ||
                           c.evict == PolicyType::CmsLfu);
    }
    if (scope == EvictionScope::Bucket) {
        // The verification shape: Algorithm 1 needs shadows and a
        // history on every set.
        adcache_assert(leaderEvery == 1);
        adcache_assert(selector == SelectorMode::Adaptive);
    } else {
        adcache_assert(capacity >= numShards);
    }
}

std::uint64_t
KvConfig::totalCapacity() const
{
    if (scope == EvictionScope::Bucket)
        return std::uint64_t(numShards) * numBuckets * bucketWays;
    return capacity;
}

KvConfig
KvConfig::lockstep(unsigned num_buckets, unsigned ways,
                   unsigned shadow_tag_bits, bool xor_fold)
{
    KvConfig c;
    c.numShards = 1;
    c.numBuckets = num_buckets;
    c.bucketWays = ways;
    c.leaderEvery = 1;
    c.shadowTagBits = shadow_tag_bits;
    c.xorFoldTags = xor_fold;
    c.historyDepth = 0;
    c.exactCounters = true;
    c.scope = EvictionScope::Bucket;
    c.selector = SelectorMode::Adaptive;
    c.keyHash = KeyHashKind::Identity;
    return c;
}

} // namespace adcache::kv
