/**
 * @file
 * AdaptiveKvCache: the concurrent, sharded facade of the adaptive
 * key-value cache (see docs/KVCACHE.md for the design).
 *
 * The key hash is consumed field by field: the low bits select the
 * shard (an independent lock domain), the next bits the bucket
 * within it, and the remainder is the key tag the shadow directories
 * fold — the software analog of an address's index/tag split.
 *
 * Mutating operations take exactly one shard mutex; shards share no
 * mutable state, so the cache scales with the number of shards until
 * the key distribution itself serializes (kv_throughput measures
 * this). With KvConfig::lockFreeReads (the Shard-scope default),
 * get/contains/pin/unpin serve their common cases without any mutex
 * at all: an epoch-guarded optimistic probe validated by per-bucket
 * seqlocks, with LRU/LFU promotion deferred into a bounded ring the
 * mutating operations drain (docs/KVCACHE.md "Concurrency model").
 * Stats aggregate through StatRegistry so kv experiments flow
 * through the same report pipeline as the simulator benches.
 */

#ifndef ADCACHE_KV_ADAPTIVE_KV_CACHE_HH
#define ADCACHE_KV_ADAPTIVE_KV_CACHE_HH

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "kv/kv_shard.hh"
#include "kv/kv_types.hh"

namespace adcache::obs
{
class MetricsRegistry;
class MetricsSink;
} // namespace adcache::obs

namespace adcache::kv
{

/**
 * One shard's live telemetry, snapshotted under its lock: the
 * adaptation signals the drift monitor consumes (flips, diffMisses,
 * ops) plus the identity/health fields Stats v2 and /metrics
 * report per shard.
 */
struct KvShardTelemetry
{
    std::uint64_t references = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t gets = 0;
    std::uint64_t getHits = 0;
    std::uint64_t evictions = 0;
    std::uint64_t admitRejects = 0;
    std::uint64_t expirations = 0;
    std::uint64_t readRetries = 0;
    std::uint64_t slowProbes = 0;
    std::uint64_t selectionFlips = 0;
    std::uint64_t diffMisses = 0;
    std::uint64_t size = 0;
    std::uint64_t pinned = 0;
    unsigned winner = 0; //!< component ordinal of domain 0's winner

    /** Filling references + non-filling probes: the op count drift
     *  rates are normalized by. */
    std::uint64_t ops() const { return references + gets; }

    double hitRate() const
    {
        const std::uint64_t total = ops();
        return total == 0
                   ? 0.0
                   : double(hits + getHits) / double(total);
    }
};

/** Concurrent sharded adaptive key-value cache. */
class AdaptiveKvCache
{
  public:
    explicit AdaptiveKvCache(const KvConfig &config);

    AdaptiveKvCache(const AdaptiveKvCache &) = delete;
    AdaptiveKvCache &operator=(const AdaptiveKvCache &) = delete;

    /** Non-filling probe; promotes the entry on a hit. */
    std::optional<std::string> get(KvKey key);

    /**
     * Batched non-filling probe: resolves keys[i] into out[i]
     * exactly as keys.size() serial get() calls would, but groups
     * the keys by shard first so each shard group pays for one epoch
     * guard, one latency sample, and (when any key needs the slow
     * path) one mutex acquisition instead of one per key. Keys keep
     * their relative order within a shard group, so promotion order
     * matches the serial replay. Duplicates are fine.
     * @return the number of hits.
     */
    std::size_t getMany(std::span<const KvKey> keys,
                        std::optional<std::string> *out);

    /** Vector convenience over the span overload. */
    std::vector<std::optional<std::string>>
    getMany(std::span<const KvKey> keys);

    /**
     * Read-through fetch: on a miss, @p loader produces the value
     * (called under the shard lock, at most once) and the result is
     * admitted per Algorithm 1. @p ttl stamps a freshly admitted
     * entry with an expiry @p ttl clock ticks from now (0 = never).
     */
    std::string fetch(KvKey key,
                      const std::function<std::string()> &loader,
                      std::uint64_t ttl = 0);

    /** Insert or overwrite. @p pinned pins the entry; @p ttl stamps
     *  (or, on overwrite, re-stamps) its expiry (0 = never). */
    KvOutcome put(KvKey key, std::string_view value,
                  bool pinned = false, std::uint64_t ttl = 0);

    /**
     * One filling reference with explicit outcome — the advanced /
     * lockstep surface. fetch() and put() are thin wrappers.
     */
    KvOutcome reference(KvKey key, std::string_view value,
                        bool overwrite = false,
                        std::uint64_t ttl = 0);

    /** Remove @p key. @return true iff it was resident. */
    bool erase(KvKey key);

    /** Exempt @p key from eviction / re-admit it to eviction. */
    bool pin(KvKey key);
    bool unpin(KvKey key);

    /** Membership without promotion. */
    bool contains(KvKey key) const;

    /** Resident entries, summed over shards. */
    std::size_t size() const;

    std::uint64_t capacity() const;
    unsigned numShards() const { return unsigned(shards_.size()); }

    /** Shard an arbitrary key maps to. */
    unsigned shardOf(KvKey key) const;

    /**
     * TTL clock: a monotone logical tick counter shared by every
     * shard. Entries stamped with a ttl expire once the clock
     * reaches (stamp-time + ttl); the cache never advances the clock
     * itself, so callers choose the time base — per-op ticks in
     * deterministic tests, wall-clock milliseconds in the server.
     */
    std::uint64_t clockNow() const;

    /** Advance the clock by @p ticks. */
    void clockAdvance(std::uint64_t ticks = 1);

    /** Advance the clock to at least @p now (never backwards). */
    void clockAdvanceTo(std::uint64_t now);

    /**
     * Aggregate (and, with @p per_shard, per-shard "shardNN."-
     * prefixed) statistics under @p prefix.
     */
    void registerStats(StatRegistry &reg, const std::string &prefix,
                       bool per_shard = false) const;

    /** Per-shard telemetry snapshot (each shard sampled under its
     *  own lock; shards are not mutually synchronized, which is fine
     *  for rate monitoring). */
    std::vector<KvShardTelemetry> shardTelemetry() const;

    /**
     * Register this cache as a scrape-time collector in @p reg: the
     * kv hot path stays untouched — counters are sampled under the
     * shard locks only when a scrape happens. The cache must outlive
     * the registry (or the registry must stop scraping first).
     */
    void registerMetrics(obs::MetricsRegistry &reg) const;

    /** The collector body (exposed for direct use in tests). */
    void collectMetrics(obs::MetricsSink &sink) const;

    /** Direct, UNSYNCHRONIZED shard access (tests and oracles). */
    KvShard &shard(unsigned i) { return *shards_[i]; }
    const KvShard &shard(unsigned i) const { return *shards_[i]; }

    std::string describe() const;

    const KvConfig &config() const { return config_; }

  private:
    std::uint64_t hashOf(KvKey key) const;
    bool setPinned(KvKey key, bool pinned);

    KvConfig config_;
    unsigned shardMask_;
    /** TTL clock (declared before the shards that point at it). */
    std::atomic<std::uint64_t> clock_{0};
    std::vector<std::unique_ptr<KvShard>> shards_;
    mutable std::vector<std::mutex> locks_;
};

} // namespace adcache::kv

#endif // ADCACHE_KV_ADAPTIVE_KV_CACHE_HH
