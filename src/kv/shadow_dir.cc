#include "kv/shadow_dir.hh"

namespace adcache::kv
{

namespace
{

CacheGeometry
dirGeometry(unsigned num_buckets, unsigned ways)
{
    CacheGeometry geom;
    geom.lineSize = 64; // arbitrary power of two; keys carry no offset
    geom.numSets = num_buckets;
    geom.assoc = ways;
    geom.validate();
    return geom;
}

} // namespace

KvShadowDir::KvShadowDir(unsigned num_buckets, unsigned ways,
                         PolicyType policy, unsigned partial_bits,
                         bool xor_fold, Rng *rng,
                         const adapt::TinyLfuAdmission *admission)
    : geom_(dirGeometry(num_buckets, ways)),
      tagMask_(lowMask(64 - geom_.offsetBits() - geom_.indexBits())),
      shadow_(geom_, policy, partial_bits, xor_fold, rng, admission)
{
}

Addr
KvShadowDir::addrOf(std::uint32_t bucket, std::uint64_t key_tag) const
{
    return geom_.reconstruct(bucket, key_tag & tagMask_);
}

ShadowOutcome
KvShadowDir::access(std::uint32_t bucket, std::uint64_t key_tag)
{
    return shadow_.access(addrOf(bucket, key_tag));
}

Addr
KvShadowDir::foldTag(std::uint64_t key_tag) const
{
    return shadow_.foldTag(key_tag & tagMask_);
}

bool
KvShadowDir::containsTag(std::uint32_t bucket, Addr stored_tag) const
{
    return shadow_.containsTag(bucket, stored_tag);
}

} // namespace adcache::kv
