#include "kv/kv_shard.hh"

#include <algorithm>

#include "core/shadow_cache.hh"
#include "obs/trace.hh"
#include "util/stat_registry.hh"

namespace adcache::kv
{

void
KvShardStats::add(const KvShardStats &o)
{
    references += o.references;
    hits += o.hits;
    misses += o.misses;
    gets += o.gets;
    getHits += o.getHits;
    inserts += o.inserts;
    updates += o.updates;
    evictions += o.evictions;
    directedEvictions += o.directedEvictions;
    fallbackEvictions += o.fallbackEvictions;
    rejected += o.rejected;
    admitRejects += o.admitRejects;
    erases += o.erases;
    expirations += o.expirations;
    readRetries += o.readRetries;
    slowProbes += o.slowProbes;
    diffMisses += o.diffMisses;
    for (unsigned k = 0; k < kvNumComponents; ++k)
        decisions[k] += o.decisions[k];
}

double
KvShardStats::hitRate() const
{
    const std::uint64_t total = references + gets;
    return total == 0 ? 0.0
                      : double(hits + getHits) / double(total);
}

KvShardConfig
KvShardConfig::fromCache(const KvConfig &config, unsigned shard_index)
{
    KvShardConfig c;
    const std::uint64_t base = config.capacity / config.numShards;
    const std::uint64_t extra = config.capacity % config.numShards;
    c.capacity = base + (shard_index < extra ? 1 : 0);
    c.numBuckets = config.numBuckets;
    c.bucketWays = config.bucketWays;
    c.leaderEvery = config.leaderEvery;
    c.shadowTagBits = config.shadowTagBits;
    c.xorFoldTags = config.xorFoldTags;
    c.historyDepth =
        config.historyDepth != 0
            ? config.historyDepth
            : (config.scope == EvictionScope::Bucket
                   ? config.bucketWays
                   : 64);
    c.exactCounters = config.exactCounters;
    c.scope = config.scope;
    c.selector = config.selector;
    for (unsigned k = 0; k < kvNumComponents; ++k)
        c.components[k] = config.components[k];
    c.hashShift = floorLog2(config.numShards);
    c.shardIndex = shard_index;
    c.rngSeed = config.rngSeed ^ mixKey(shard_index + 1);
    c.lockFreeReads = config.lockFreeReads;
    c.touchCapacity = config.touchCapacity;
    return c;
}

namespace
{

adapt::Selector
makeShardSelector(const KvShardConfig &config)
{
    const unsigned domains =
        config.scope == EvictionScope::Bucket ? config.numBuckets : 1;
    if (config.selector == SelectorMode::Adaptive)
        return adapt::Selector::makeAdaptive(domains, kvNumComponents,
                                             config.exactCounters,
                                             config.historyDepth);
    return adapt::Selector::makeFixed(
        domains, kvNumComponents,
        config.selector == SelectorMode::FixedLru ? kvComponentLru
                                                  : kvComponentLfu);
}

bool
anyShardAdmission(const KvShardConfig &config)
{
    for (unsigned k = 0; k < kvNumComponents; ++k)
        if (config.components[k].admission)
            return true;
    return false;
}

} // namespace

/**
 * Bucket-scope view: the slot array of one bucket against the
 * winner's shadow directory — the kv twin of the sim layer's
 * WaySetView, with pinned entries invisible in every case.
 */
class KvShard::BucketScopeView
{
  public:
    using Handle = unsigned;
    static constexpr Handle kNone = ~0u;

    BucketScopeView(KvShard &shard, unsigned bucket,
                    const KvShadowDir &shadow)
        : shard_(shard), bucket_(bucket), shadow_(shadow),
          ways_(shard.slots_[bucket]), n_(shard.config_.bucketWays)
    {
    }

    Handle
    findDisplacedMatch(std::uint64_t displaced_tag) const
    {
        for (unsigned w = 0; w < n_; ++w) {
            const KvEntry *e = ways_[w];
            if (e && !e->isPinned() &&
                shadow_.foldTag(e->tag) == displaced_tag)
                return w;
        }
        return kNone;
    }

    Handle
    findOutsideWinner() const
    {
        for (unsigned w = 0; w < n_; ++w) {
            const KvEntry *e = ways_[w];
            if (e && !e->isPinned() &&
                !shadow_.containsTag(bucket_,
                                     shadow_.foldTag(e->tag)))
                return w;
        }
        return kNone;
    }

    Handle
    fallback() const
    {
        const unsigned start = shard_.fallbackPtr_[bucket_];
        for (unsigned i = 0; i < n_; ++i) {
            const unsigned w = (start + i) % n_;
            const KvEntry *e = ways_[w];
            if (e && !e->isPinned()) {
                shard_.fallbackPtr_[bucket_] = (w + 1) % n_;
                return w;
            }
        }
        return kNone; // every entry pinned
    }

  private:
    KvShard &shard_;
    unsigned bucket_;
    const KvShadowDir &shadow_;
    const std::vector<KvEntry *> &ways_;
    unsigned n_;
};

/**
 * Shard-scope view: case 1 walks the referenced bucket's chain for
 * the shadow-displaced tag, case 2 walks the winner component's own
 * eviction order over the real contents (follower semantics,
 * Sec. 4.7) at most bucketWays deep past pinned entries, case 3
 * rotates over the buckets for an arbitrary unpinned entry.
 */
class KvShard::ShardScopeView
{
  public:
    using Handle = KvEntry *;
    static constexpr Handle kNone = nullptr;

    ShardScopeView(KvShard &shard, unsigned bucket, unsigned winner)
        : shard_(shard), bucket_(bucket), winner_(winner)
    {
    }

    Handle
    findDisplacedMatch(std::uint64_t displaced_tag) const
    {
        const KvShadowDir &shadow = *shard_.shadows_[winner_];
        for (KvEntry *e = shard_.buckets_[bucket_].chain.load(
                 std::memory_order_seq_cst);
             e;
             e = e->chainNext.load(std::memory_order_seq_cst)) {
            if (!e->isPinned() &&
                shadow.foldTag(e->tag) == displaced_tag)
                return e;
        }
        return kNone;
    }

    Handle
    findOutsideWinner() const
    {
        const bool use_lru =
            shard_.config_.components[winner_].evict ==
            PolicyType::LRU;
        KvEntry *e = use_lru ? shard_.recency_.firstCandidate()
                             : shard_.lfu_.firstCandidate();
        for (unsigned i = 0; e && i < shard_.config_.bucketWays;
             ++i) {
            if (!e->isPinned())
                return e;
            e = use_lru ? shard_.recency_.nextCandidate(e)
                        : shard_.lfu_.nextCandidate(e);
        }
        return kNone;
    }

    Handle
    fallback() const
    {
        const unsigned mask = shard_.config_.numBuckets - 1;
        for (unsigned i = 0; i < shard_.config_.numBuckets; ++i) {
            const unsigned b = (shard_.fallbackBucket_ + i) & mask;
            for (KvEntry *c = shard_.buckets_[b].chain.load(
                     std::memory_order_seq_cst);
                 c;
                 c = c->chainNext.load(std::memory_order_seq_cst)) {
                if (!c->isPinned()) {
                    shard_.fallbackBucket_ = (b + 1) & mask;
                    return c;
                }
            }
        }
        return kNone; // every entry pinned
    }

  private:
    KvShard &shard_;
    unsigned bucket_;
    unsigned winner_;
};

KvShard::KvShard(const KvShardConfig &config)
    : config_(config), rng_(config.rngSeed),
      bucketBits_(floorLog2(config.numBuckets)),
      selector_(makeShardSelector(config))
{
    adcache_assert(isPowerOfTwo(config_.numBuckets));
    adcache_assert(config_.bucketWays >= 1);
    adcache_assert(config_.leaderEvery >= 1);

    buckets_ = std::make_unique<Bucket[]>(config_.numBuckets);
    if (lockFreeEnabled())
        touches_ = std::make_unique<TouchRing>(config_.touchCapacity);
    if (config_.scope == EvictionScope::Bucket) {
        adcache_assert(config_.leaderEvery == 1);
        adcache_assert(config_.selector == SelectorMode::Adaptive);
        slots_.assign(config_.numBuckets,
                      std::vector<KvEntry *>(config_.bucketWays,
                                             nullptr));
        fallbackPtr_.assign(config_.numBuckets, 0);
    }

    if (anyShardAdmission(config_))
        admission_ = std::make_unique<adapt::TinyLfuAdmission>(
            adapt::SketchParams::forGeometry(config_.numBuckets,
                                             config_.bucketWays));

    if (config_.selector == SelectorMode::Adaptive) {
        for (unsigned k = 0; k < kvNumComponents; ++k) {
            // Directories are sized for every bucket but only leader
            // buckets touch them (cf. SbarCache's leader shadows).
            shadows_[k] = std::make_unique<KvShadowDir>(
                config_.numBuckets, config_.bucketWays,
                config_.components[k].evict, config_.shadowTagBits,
                config_.xorFoldTags, &rng_,
                config_.components[k].admission ? admission_.get()
                                                : nullptr);
        }
    }
}

KvShard::~KvShard()
{
    // The owner guarantees quiescence at destruction time, so the
    // limbo list can be freed regardless of epoch age.
    for (const Retired &r : limbo_) {
        delete r.entry;
        delete r.str;
    }
    for (unsigned i = 0; i < config_.numBuckets; ++i) {
        KvEntry *e =
            buckets_[i].chain.load(std::memory_order_relaxed);
        while (e) {
            KvEntry *next =
                e->chainNext.load(std::memory_order_relaxed);
            delete e;
            e = next;
        }
    }
    for (auto &ways : slots_)
        for (KvEntry *e : ways)
            delete e;
}

unsigned
KvShard::bucketOf(std::uint64_t h) const
{
    return unsigned((h >> config_.hashShift) &
                    (config_.numBuckets - 1));
}

std::uint64_t
KvShard::tagOf(std::uint64_t h) const
{
    return h >> (config_.hashShift + bucketBits_);
}

std::uint64_t
KvShard::admitKey(std::uint64_t tag) const
{
    return shadows_[0] ? std::uint64_t(shadows_[0]->foldTag(tag))
                       : tag;
}

bool
KvShard::isLeader(unsigned bucket) const
{
    return shadows_[0] != nullptr &&
           bucket % config_.leaderEvery == 0;
}

KvEntry *
KvShard::findChain(unsigned bucket, KvKey key) const
{
    for (KvEntry *e =
             buckets_[bucket].chain.load(std::memory_order_seq_cst);
         e; e = e->chainNext.load(std::memory_order_seq_cst))
        if (e->key == key)
            return e;
    return nullptr;
}

KvEntry *
KvShard::findSlot(unsigned bucket, KvKey key, unsigned *way) const
{
    const auto &ways = slots_[bucket];
    for (unsigned w = 0; w < config_.bucketWays; ++w) {
        if (ways[w] && ways[w]->key == key) {
            if (way)
                *way = w;
            return ways[w];
        }
    }
    return nullptr;
}

KvEntry *
KvShard::find(unsigned bucket, KvKey key, unsigned *way) const
{
    return config_.scope == EvictionScope::Bucket
               ? findSlot(bucket, key, way)
               : findChain(bucket, key);
}

std::uint64_t
KvShard::nowTick() const
{
    return config_.clock
               ? config_.clock->load(std::memory_order_seq_cst)
               : 0;
}

bool
KvShard::isExpired(const KvEntry *e) const
{
    if (!config_.clock)
        return false;
    const std::uint64_t now = nowTick();
    const std::uint64_t stamp =
        e->expiry.load(std::memory_order_seq_cst);
    return stamp != 0 && stamp <= now;
}

KvEntry *
KvShard::bucketVictim(unsigned bucket, unsigned winner,
                      const ShadowOutcome &winner_out,
                      unsigned *way_out, adapt::VictimCase &case_out)
{
    // Algorithm 1 (cf. AdaptiveCache), run by the shared engine.
    BucketScopeView view(*this, bucket, *shadows_[winner]);
    const auto choice = adapt::imitateVictim(
        view, winner_out.evicted, winner_out.evictedTag);
    case_out = choice.kind;
    if (choice.handle == BucketScopeView::kNone)
        return nullptr;
    *way_out = choice.handle;
    return slots_[bucket][choice.handle];
}

KvEntry *
KvShard::shardVictim(unsigned bucket, bool leader, unsigned winner,
                     const ShadowOutcome &winner_out,
                     adapt::VictimCase &case_out)
{
    ShardScopeView view(*this, bucket, winner);
    const auto choice = adapt::imitateVictim(
        view, leader && winner_out.evicted, winner_out.evictedTag);
    case_out = choice.kind;
    return choice.handle;
}

void
KvShard::beginBucketChange(unsigned bucket)
{
    buckets_[bucket].seq.fetch_add(1, std::memory_order_seq_cst);
}

void
KvShard::endBucketChange(unsigned bucket)
{
    buckets_[bucket].seq.fetch_add(1, std::memory_order_seq_cst);
}

bool
KvShard::killForRemoval(KvEntry *e)
{
    std::uint32_t expected = 0;
    return e->pinState.compare_exchange_strong(
        expected, KvEntry::kDyingBit, std::memory_order_seq_cst,
        std::memory_order_seq_cst);
}

void
KvShard::setValue(KvEntry *e, std::string &&v)
{
    const std::string *old =
        e->value.load(std::memory_order_seq_cst);
    if (*old == v)
        return; // identical overwrite: keep the published string
    e->value.store(new std::string(std::move(v)),
                   std::memory_order_seq_cst);
    retireString(old);
}

void
KvShard::retireEntry(KvEntry *e)
{
    if (!lockFreeEnabled()) {
        delete e;
        return;
    }
    limbo_.push_back(
        {EpochDomain::instance().current(), e, nullptr});
    maybeReclaim();
}

void
KvShard::retireString(const std::string *s)
{
    if (!lockFreeEnabled()) {
        delete s;
        return;
    }
    limbo_.push_back(
        {EpochDomain::instance().current(), nullptr, s});
    maybeReclaim();
}

void
KvShard::maybeReclaim(bool force)
{
    constexpr std::size_t kReclaimBatch = 64;
    if (!force && limbo_.size() < kReclaimBatch)
        return;
    EpochDomain &domain = EpochDomain::instance();
    // Freeing a retirement needs the epoch two past it; two gated
    // attempts cover the idle case in a single call.
    domain.tryAdvance();
    domain.tryAdvance();
    const std::uint64_t cur = domain.current();
    std::size_t kept = 0;
    for (const Retired &r : limbo_) {
        if (r.epoch + 2 <= cur) {
            delete r.entry;
            delete r.str;
        } else {
            limbo_[kept++] = r;
        }
    }
    limbo_.resize(kept);
}

void
KvShard::promote(KvEntry *e)
{
    recency_.moveToFront(e);
    lfu_.onHit(e);
}

void
KvShard::drainTouches()
{
    if (!touches_)
        return;
    touches_->drain([this](KvKey key, std::uint64_t hash) {
        // The entry may have been evicted, erased, or replaced by a
        // fresh insert since the touch was queued; promoting by key
        // identity is exactly the relaxed semantics documented.
        if (KvEntry *e = findChain(bucketOf(hash), key))
            promote(e);
    });
}

void
KvShard::unlinkEntry(KvEntry *e)
{
    const std::uint32_t old = e->pinState.fetch_or(
        KvEntry::kDyingBit, std::memory_order_seq_cst);
    if (old & KvEntry::kPinnedBit)
        pinned_.fetch_sub(1, std::memory_order_seq_cst);
    if (config_.scope == EvictionScope::Bucket) {
        auto &ways = slots_[e->bucket];
        for (unsigned w = 0; w < config_.bucketWays; ++w) {
            if (ways[w] == e) {
                ways[w] = nullptr;
                break;
            }
        }
        --size_;
        delete e;
        return;
    }
    Bucket &b = buckets_[e->bucket];
    beginBucketChange(e->bucket);
    KvEntry *next = e->chainNext.load(std::memory_order_seq_cst);
    if (e->chainPrev)
        e->chainPrev->chainNext.store(next,
                                      std::memory_order_seq_cst);
    else
        b.chain.store(next, std::memory_order_seq_cst);
    if (next)
        next->chainPrev = e->chainPrev;
    endBucketChange(e->bucket);
    recency_.remove(e);
    lfu_.remove(e);
    --size_;
    // The victim's own chainNext is left intact so a reader paused
    // on it mid-walk still reaches the rest of the chain.
    retireEntry(e);
}

KvOutcome
KvShard::reference(KvKey key, std::uint64_t h,
                   const std::function<std::string()> &make_value,
                   bool overwrite, bool pin, std::string *value_out,
                   std::uint64_t ttl)
{
    KvOutcome out;
    drainTouches();
    ++stats_.references;
    const unsigned bucket = bucketOf(h);
    const std::uint64_t tag = tagOf(h);
    const bool leader = isLeader(bucket);

    // The admission filter sees every candidate before any component
    // simulation consults it (same order as AdaptiveCache and the
    // oracle).
    if (admission_)
        admission_->touch(admitKey(tag));

    // Every filling reference updates the component simulations and
    // (on a differentiating miss) the selection history — before the
    // real lookup, exactly as Algorithm 1 orders it.
    ShadowOutcome shadow_out[kvNumComponents] = {};
    if (leader) {
        std::uint32_t miss_mask = 0;
        for (unsigned k = 0; k < kvNumComponents; ++k) {
            shadow_out[k] = shadows_[k]->access(bucket, tag);
            if (shadow_out[k].miss)
                miss_mask |= 1u << k;
        }
        if (miss_mask != 0 &&
            miss_mask != (1u << kvNumComponents) - 1)
            ++stats_.diffMisses;
        // Flips are rare, so the tracing gate hides behind the flip
        // check; with two components the loser is `winner ^ 1`.
        if (selector_.record(domainOf(bucket), miss_mask) &&
            obs::traceEnabled()) {
            const unsigned to = selector_.winner(domainOf(bucket));
            obs::emit(obs::kvWinnerFlipEvent(stats_.references,
                                             config_.shardIndex,
                                             to ^ 1u, to));
        }
    }

    unsigned hit_way = 0;
    KvEntry *resident = find(bucket, key, &hit_way);
    if (resident && isExpired(resident)) {
        // Lazy TTL: the stale twin is logically absent, so purge it
        // and run the rest of the reference as a miss (the fresh
        // value below re-enters with a fresh stamp).
        out.expired = true;
        ++stats_.expirations;
        unlinkEntry(resident);
        resident = nullptr;
    }
    if (KvEntry *e = resident) {
        ++stats_.hits;
        out.hit = true;
        if (config_.scope == EvictionScope::Shard)
            promote(e);
        if (overwrite) {
            setValue(e, make_value());
            e->expiry.store(ttl ? nowTick() + ttl : 0,
                            std::memory_order_seq_cst);
            out.updated = true;
            ++stats_.updates;
        }
        if (pin) {
            const std::uint32_t old = e->pinState.fetch_or(
                KvEntry::kPinnedBit, std::memory_order_seq_cst);
            if (!(old & KvEntry::kPinnedBit))
                pinned_.fetch_add(1, std::memory_order_seq_cst);
        }
        if (value_out)
            *value_out = *e->value.load(std::memory_order_seq_cst);
        return out;
    }

    ++stats_.misses;

    unsigned fill_way = config_.bucketWays;
    bool need_evict;
    if (config_.scope == EvictionScope::Bucket) {
        const auto &ways = slots_[bucket];
        for (unsigned w = 0; w < config_.bucketWays; ++w) {
            if (!ways[w]) {
                fill_way = w;
                break;
            }
        }
        need_evict = fill_way == config_.bucketWays;
    } else {
        need_evict = size_ >= config_.capacity;
    }

    if (need_evict) {
        const unsigned winner = selector_.winner(domainOf(bucket));
        out.replaced = true;
        out.winner = winner;
        ++stats_.decisions[winner];

        // Bucket scope imitates the winner's admission verdict: when
        // its shadow refused to fill, the real bucket keeps its
        // contents too. The decision is still counted — "bypass" was
        // the winning component's replacement choice.
        if (config_.scope == EvictionScope::Bucket &&
            shadow_out[winner].bypassed) {
            out.admitRejected = true;
            ++stats_.admitRejects;
            if (obs::traceEnabled())
                obs::emit(obs::kvAdmitRejectEvent(stats_.references,
                                                  config_.shardIndex,
                                                  winner, key));
            if (value_out)
                *value_out = make_value();
            return out;
        }

        adapt::VictimCase evict_case = adapt::VictimCase::VictimMatch;
        KvEntry *victim = nullptr;
        bool admit_rejected = false;
        for (;;) {
            evict_case = adapt::VictimCase::VictimMatch;
            victim = config_.scope == EvictionScope::Bucket
                         ? bucketVictim(bucket, winner,
                                        shadow_out[winner],
                                        &fill_way, evict_case)
                         : shardVictim(bucket, leader, winner,
                                       shadow_out[winner],
                                       evict_case);
            if (!victim)
                break;
            // Shard scope queries the filter on the real
            // (candidate, victim) pair — there is no per-reference
            // shadow verdict to imitate for follower buckets or
            // fixed selectors. Checked before the removal claim so
            // a refused candidate never marks a victim dying.
            if (config_.scope == EvictionScope::Shard &&
                admission_ &&
                config_.components[winner].admission &&
                !admission_->admit(admitKey(tag),
                                   admitKey(victim->tag))) {
                admit_rejected = true;
                break;
            }
            // Claim the victim against concurrent lock-free
            // pinners; on a lost race it is pinned now and the
            // re-run search skips it.
            if (!lockFreeEnabled() || killForRemoval(victim))
                break;
        }

        if (admit_rejected) {
            out.admitRejected = true;
            ++stats_.admitRejects;
            if (obs::traceEnabled())
                obs::emit(obs::kvAdmitRejectEvent(stats_.references,
                                                  config_.shardIndex,
                                                  winner, key));
            if (value_out)
                *value_out = make_value();
            return out;
        }

        if (!victim) {
            // Pins defeated every search: the fallback rotation is
            // still accounted (it ran and found nothing) and the
            // insertion is rejected.
            out.fallback = true;
            ++stats_.fallbackEvictions;
            out.rejected = true;
            ++stats_.rejected;
            if (value_out)
                *value_out = make_value();
            return out;
        }

        switch (evict_case) {
          case adapt::VictimCase::VictimMatch:
            if (config_.scope == EvictionScope::Shard) {
                out.directed = true;
                ++stats_.directedEvictions;
            }
            break;
          case adapt::VictimCase::ShadowAbsent:
            break;
          default:
            out.fallback = true;
            ++stats_.fallbackEvictions;
            break;
        }

        out.evicted = true;
        out.evictedKey = victim->key;
        ++stats_.evictions;
        if (obs::traceEnabled())
            obs::emit(obs::kvEvictionEvent(
                stats_.references, config_.shardIndex, winner,
                toEvictCase(evict_case), victim->key));
        unlinkEntry(victim);
    }

    auto *e = new KvEntry;
    e->key = key;
    e->tag = tag;
    e->bucket = bucket;
    e->pinState.store(pin ? KvEntry::kPinnedBit : 0u,
                      std::memory_order_relaxed);
    e->expiry.store(ttl ? nowTick() + ttl : 0,
                    std::memory_order_relaxed);
    e->value.store(new std::string(make_value()),
                   std::memory_order_relaxed);
    if (pin)
        pinned_.fetch_add(1, std::memory_order_seq_cst);
    if (config_.scope == EvictionScope::Bucket) {
        slots_[bucket][fill_way] = e;
    } else {
        Bucket &b = buckets_[bucket];
        KvEntry *head = b.chain.load(std::memory_order_seq_cst);
        e->chainNext.store(head, std::memory_order_relaxed);
        beginBucketChange(bucket);
        if (head)
            head->chainPrev = e;
        // Publication point: every field above is initialized
        // before the head store makes the entry reachable.
        b.chain.store(e, std::memory_order_seq_cst);
        endBucketChange(bucket);
        recency_.pushFront(e);
        lfu_.onInsert(e);
    }
    ++size_;
    ++stats_.inserts;
    out.inserted = true;
    if (value_out)
        *value_out = *e->value.load(std::memory_order_relaxed);
    return out;
}

const std::string *
KvShard::probe(KvKey key, std::uint64_t h, unsigned retries)
{
    drainTouches();
    if (retries > 0) {
        // A lock-free probe exhausted its optimism and fell in
        // here; make the storm observable.
        readRetries_.fetch_add(retries, std::memory_order_relaxed);
        slowProbes_.fetch_add(1, std::memory_order_relaxed);
        if (obs::traceEnabled())
            obs::emit(obs::kvReadRetryEvent(
                gets_.load(std::memory_order_relaxed),
                config_.shardIndex, retries, key));
    }
    gets_.fetch_add(1, std::memory_order_relaxed);
    KvEntry *e = find(bucketOf(h), key, nullptr);
    if (!e)
        return nullptr;
    if (isExpired(e)) {
        ++stats_.expirations;
        unlinkEntry(e);
        return nullptr;
    }
    getHits_.fetch_add(1, std::memory_order_relaxed);
    if (config_.scope == EvictionScope::Shard)
        promote(e);
    return e->value.load(std::memory_order_seq_cst);
}

KvShard::ProbeResult
KvShard::tryProbe(KvKey key, std::uint64_t h,
                  std::string *value_out, unsigned *retries_out)
{
    constexpr unsigned kMaxOptimism = 4;
    const unsigned bucket = bucketOf(h);
    const Bucket &b = buckets_[bucket];
    unsigned retries = 0;
    while (retries < kMaxOptimism) {
        const std::uint32_t s1 =
            b.seq.load(std::memory_order_seq_cst);
        if (s1 & 1) {
            // A writer is restructuring this bucket right now; the
            // mutex slow path is the correct backoff.
            ++retries;
            continue;
        }
        KvEntry *found = nullptr;
        for (KvEntry *e =
                 b.chain.load(std::memory_order_seq_cst);
             e; e = e->chainNext.load(std::memory_order_seq_cst)) {
            if (e->key == key) {
                found = e;
                break;
            }
        }
        if (!found) {
            if (b.seq.load(std::memory_order_seq_cst) != s1) {
                // The chain changed under the walk; a concurrent
                // insert of this very key may have been skipped.
                ++retries;
                continue;
            }
            *retries_out = retries;
            gets_.fetch_add(1, std::memory_order_relaxed);
            return ProbeResult::Miss;
        }
        // A lapsed stamp is a validated miss without any seqlock
        // check: the clock was read before the stamp and only moves
        // forward, so the entry was provably expired at the instant
        // of the stamp load. The unlink itself stays lazy (it needs
        // the mutex) — the next locked contact purges the entry.
        if (isExpired(found)) {
            *retries_out = retries;
            gets_.fetch_add(1, std::memory_order_relaxed);
            return ProbeResult::Miss;
        }
        // Hits need no seqlock validation: key/tag are immutable
        // once published, the value is an immutable heap string
        // swapped by pointer, and the epoch guard keeps both the
        // entry and the string alive — so whatever pointer this
        // load returns was the published value of `key` at some
        // point during the probe (the identity/ABA torture tests
        // pin down exactly this claim).
        *value_out = *found->value.load(std::memory_order_seq_cst);
        *retries_out = retries;
        gets_.fetch_add(1, std::memory_order_relaxed);
        getHits_.fetch_add(1, std::memory_order_relaxed);
        if (retries > 0)
            readRetries_.fetch_add(retries,
                                   std::memory_order_relaxed);
        if (touches_->tryPush(key, h))
            return ProbeResult::Hit;
        return ProbeResult::NeedTouchDrain;
    }
    *retries_out = retries;
    return ProbeResult::NeedSlow;
}

void
KvShard::touchSlow(KvKey key, std::uint64_t h)
{
    // The hit was already counted by tryProbe; this call only
    // applies the promotion the full ring could not absorb.
    slowProbes_.fetch_add(1, std::memory_order_relaxed);
    drainTouches();
    if (KvEntry *e = findChain(bucketOf(h), key))
        promote(e);
}

int
KvShard::containsRelaxed(KvKey key, std::uint64_t h) const
{
    constexpr unsigned kMaxOptimism = 4;
    const unsigned bucket = bucketOf(h);
    const Bucket &b = buckets_[bucket];
    for (unsigned attempt = 0; attempt < kMaxOptimism; ++attempt) {
        const std::uint32_t s1 =
            b.seq.load(std::memory_order_seq_cst);
        if (s1 & 1)
            continue;
        for (const KvEntry *e =
                 b.chain.load(std::memory_order_seq_cst);
             e; e = e->chainNext.load(std::memory_order_seq_cst))
            if (e->key == key)
                return isExpired(e) ? 0 : 1;
        if (b.seq.load(std::memory_order_seq_cst) == s1)
            return 0;
    }
    return -1;
}

int
KvShard::trySetPinned(KvKey key, std::uint64_t h, bool pinned)
{
    constexpr unsigned kMaxOptimism = 4;
    const unsigned bucket = bucketOf(h);
    const Bucket &b = buckets_[bucket];
    for (unsigned attempt = 0; attempt < kMaxOptimism; ++attempt) {
        const std::uint32_t s1 =
            b.seq.load(std::memory_order_seq_cst);
        if (s1 & 1)
            continue;
        KvEntry *found = nullptr;
        for (KvEntry *e =
                 b.chain.load(std::memory_order_seq_cst);
             e; e = e->chainNext.load(std::memory_order_seq_cst)) {
            if (e->key == key) {
                found = e;
                break;
            }
        }
        if (!found) {
            if (b.seq.load(std::memory_order_seq_cst) == s1)
                return 0;
            continue;
        }
        if (isExpired(found))
            return 0; // logically absent; purged on locked contact
        std::uint32_t old =
            found->pinState.load(std::memory_order_seq_cst);
        for (;;) {
            if (old & KvEntry::kDyingBit)
                return 0; // mid-eviction: linearize after removal
            const std::uint32_t want =
                pinned ? (old | KvEntry::kPinnedBit)
                       : (old & ~KvEntry::kPinnedBit);
            if (want == old)
                return 1;
            if (found->pinState.compare_exchange_weak(
                    old, want, std::memory_order_seq_cst,
                    std::memory_order_seq_cst)) {
                if (pinned)
                    pinned_.fetch_add(1,
                                      std::memory_order_seq_cst);
                else
                    pinned_.fetch_sub(1,
                                      std::memory_order_seq_cst);
                return 1;
            }
        }
    }
    return -1;
}

bool
KvShard::erase(KvKey key, std::uint64_t h)
{
    drainTouches();
    KvEntry *e = find(bucketOf(h), key, nullptr);
    if (!e)
        return false;
    if (isExpired(e)) {
        // Already logically gone: account the purge as an
        // expiration, and report the erase as a no-op.
        ++stats_.expirations;
        unlinkEntry(e);
        return false;
    }
    ++stats_.erases;
    unlinkEntry(e);
    return true;
}

bool
KvShard::setPinned(KvKey key, std::uint64_t h, bool pinned)
{
    drainTouches();
    KvEntry *e = find(bucketOf(h), key, nullptr);
    if (!e)
        return false;
    if (isExpired(e)) {
        ++stats_.expirations;
        unlinkEntry(e);
        return false;
    }
    const std::uint32_t old =
        pinned ? e->pinState.fetch_or(KvEntry::kPinnedBit,
                                      std::memory_order_seq_cst)
               : e->pinState.fetch_and(~KvEntry::kPinnedBit,
                                       std::memory_order_seq_cst);
    const bool was = (old & KvEntry::kPinnedBit) != 0;
    if (was != pinned) {
        if (pinned)
            pinned_.fetch_add(1, std::memory_order_seq_cst);
        else
            pinned_.fetch_sub(1, std::memory_order_seq_cst);
    }
    return true;
}

bool
KvShard::contains(KvKey key, std::uint64_t h) const
{
    const KvEntry *e = find(bucketOf(h), key, nullptr);
    return e != nullptr && !isExpired(e);
}

std::uint64_t
KvShard::capacity() const
{
    return config_.scope == EvictionScope::Bucket
               ? std::uint64_t(config_.numBuckets) *
                     config_.bucketWays
               : config_.capacity;
}

std::uint64_t
KvShard::shadowMisses(unsigned k) const
{
    return shadows_[k] ? shadows_[k]->misses() : 0;
}

std::uint64_t
KvShard::selectionFlips() const
{
    return selector_.flips();
}

unsigned
KvShard::currentWinner(unsigned bucket) const
{
    return selector_.winner(domainOf(bucket));
}

std::uint64_t
KvShard::historyCount(unsigned bucket, unsigned k) const
{
    return selector_.count(domainOf(bucket), k);
}

std::vector<KvKey>
KvShard::residentKeys() const
{
    std::vector<KvKey> keys;
    keys.reserve(size_);
    if (config_.scope == EvictionScope::Bucket) {
        for (const auto &ways : slots_)
            for (const KvEntry *e : ways)
                if (e)
                    keys.push_back(e->key);
    } else {
        for (unsigned i = 0; i < config_.numBuckets; ++i)
            for (const KvEntry *e = buckets_[i].chain.load(
                     std::memory_order_seq_cst);
                 e;
                 e = e->chainNext.load(std::memory_order_seq_cst))
                keys.push_back(e->key);
    }
    return keys;
}

KvShardStats
KvShard::stats() const
{
    KvShardStats s = stats_;
    s.gets = gets_.load(std::memory_order_seq_cst);
    s.getHits = getHits_.load(std::memory_order_seq_cst);
    s.readRetries = readRetries_.load(std::memory_order_seq_cst);
    s.slowProbes = slowProbes_.load(std::memory_order_seq_cst);
    return s;
}

void
KvShard::registerStats(StatRegistry &reg,
                       const std::string &prefix) const
{
    const KvShardStats snap = stats();
    reg.counter(prefix + "references", snap.references);
    reg.counter(prefix + "hits", snap.hits);
    reg.counter(prefix + "misses", snap.misses);
    reg.counter(prefix + "gets", snap.gets);
    reg.counter(prefix + "get_hits", snap.getHits);
    reg.counter(prefix + "inserts", snap.inserts);
    reg.counter(prefix + "updates", snap.updates);
    reg.counter(prefix + "evictions", snap.evictions);
    reg.counter(prefix + "directed_evictions",
                snap.directedEvictions);
    reg.counter(prefix + "fallback_evictions",
                snap.fallbackEvictions);
    reg.counter(prefix + "rejected_puts", snap.rejected);
    reg.counter(prefix + "erases", snap.erases);
    reg.counter(prefix + "expirations", snap.expirations);
    reg.counter(prefix + "read_retries", snap.readRetries);
    reg.counter(prefix + "slow_probes", snap.slowProbes);
    reg.counter(prefix + "diff_misses", snap.diffMisses);
    for (unsigned k = 0; k < kvNumComponents; ++k) {
        const std::string name =
            kvComponentName(config_.components[k]);
        reg.counter(prefix + "decisions." + name,
                    snap.decisions[k]);
        reg.counter(prefix + "shadow." + name + ".misses",
                    shadowMisses(k));
    }
    reg.counter(prefix + "selection_flips", selectionFlips());
    if (admission_)
        reg.counter(prefix + "admit_rejects", snap.admitRejects);
    reg.counter(prefix + "size", size_);
    reg.counter(prefix + "pinned", pinnedCount());
    reg.value(prefix + "hit_rate", snap.hitRate());
}

} // namespace adcache::kv
