#include "kv/kv_shard.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "util/stat_registry.hh"

namespace adcache::kv
{

void
KvShardStats::add(const KvShardStats &o)
{
    references += o.references;
    hits += o.hits;
    misses += o.misses;
    gets += o.gets;
    getHits += o.getHits;
    inserts += o.inserts;
    updates += o.updates;
    evictions += o.evictions;
    directedEvictions += o.directedEvictions;
    fallbackEvictions += o.fallbackEvictions;
    rejected += o.rejected;
    erases += o.erases;
    for (unsigned k = 0; k < kvNumComponents; ++k)
        decisions[k] += o.decisions[k];
}

double
KvShardStats::hitRate() const
{
    const std::uint64_t total = references + gets;
    return total == 0 ? 0.0
                      : double(hits + getHits) / double(total);
}

KvShardConfig
KvShardConfig::fromCache(const KvConfig &config, unsigned shard_index)
{
    KvShardConfig c;
    const std::uint64_t base = config.capacity / config.numShards;
    const std::uint64_t extra = config.capacity % config.numShards;
    c.capacity = base + (shard_index < extra ? 1 : 0);
    c.numBuckets = config.numBuckets;
    c.bucketWays = config.bucketWays;
    c.leaderEvery = config.leaderEvery;
    c.shadowTagBits = config.shadowTagBits;
    c.xorFoldTags = config.xorFoldTags;
    c.historyDepth =
        config.historyDepth != 0
            ? config.historyDepth
            : (config.scope == EvictionScope::Bucket
                   ? config.bucketWays
                   : 64);
    c.exactCounters = config.exactCounters;
    c.scope = config.scope;
    c.selector = config.selector;
    c.hashShift = floorLog2(config.numShards);
    c.shardIndex = shard_index;
    c.rngSeed = config.rngSeed ^ mixKey(shard_index + 1);
    return c;
}

KvShard::KvShard(const KvShardConfig &config)
    : config_(config), rng_(config.rngSeed),
      bucketBits_(floorLog2(config.numBuckets))
{
    adcache_assert(isPowerOfTwo(config_.numBuckets));
    adcache_assert(config_.bucketWays >= 1);
    adcache_assert(config_.leaderEvery >= 1);

    buckets_.assign(config_.numBuckets, Bucket{});
    if (config_.scope == EvictionScope::Bucket) {
        adcache_assert(config_.leaderEvery == 1);
        adcache_assert(config_.selector == SelectorMode::Adaptive);
        slots_.assign(config_.numBuckets,
                      std::vector<KvEntry *>(config_.bucketWays,
                                             nullptr));
        fallbackPtr_.assign(config_.numBuckets, 0);
    }

    if (config_.selector == SelectorMode::Adaptive) {
        for (unsigned k = 0; k < kvNumComponents; ++k) {
            // Directories are sized for every bucket but only leader
            // buckets touch them (cf. SbarCache's leader shadows).
            shadows_[k] = std::make_unique<KvShadowDir>(
                config_.numBuckets, config_.bucketWays,
                k == kvComponentLru ? PolicyType::LRU
                                    : PolicyType::LFU,
                config_.shadowTagBits, config_.xorFoldTags, &rng_);
        }
    }

    const unsigned domains =
        config_.scope == EvictionScope::Bucket ? config_.numBuckets
                                               : 1;
    selectors_.reserve(domains);
    for (unsigned d = 0; d < domains; ++d)
        selectors_.emplace_back(config_.selector,
                                config_.exactCounters,
                                config_.historyDepth);
}

KvShard::~KvShard()
{
    for (Bucket &b : buckets_) {
        KvEntry *e = b.chain;
        while (e) {
            KvEntry *next = e->chainNext;
            delete e;
            e = next;
        }
    }
    for (auto &ways : slots_)
        for (KvEntry *e : ways)
            delete e;
}

unsigned
KvShard::bucketOf(std::uint64_t h) const
{
    return unsigned((h >> config_.hashShift) &
                    (config_.numBuckets - 1));
}

std::uint64_t
KvShard::tagOf(std::uint64_t h) const
{
    return h >> (config_.hashShift + bucketBits_);
}

KvSelector &
KvShard::selectorFor(unsigned bucket)
{
    return selectors_[config_.scope == EvictionScope::Bucket ? bucket
                                                             : 0];
}

const KvSelector &
KvShard::selectorFor(unsigned bucket) const
{
    return selectors_[config_.scope == EvictionScope::Bucket ? bucket
                                                             : 0];
}

bool
KvShard::isLeader(unsigned bucket) const
{
    return shadows_[0] != nullptr &&
           bucket % config_.leaderEvery == 0;
}

KvEntry *
KvShard::findChain(unsigned bucket, KvKey key) const
{
    for (KvEntry *e = buckets_[bucket].chain; e; e = e->chainNext)
        if (e->key == key)
            return e;
    return nullptr;
}

KvEntry *
KvShard::findSlot(unsigned bucket, KvKey key, unsigned *way) const
{
    const auto &ways = slots_[bucket];
    for (unsigned w = 0; w < config_.bucketWays; ++w) {
        if (ways[w] && ways[w]->key == key) {
            if (way)
                *way = w;
            return ways[w];
        }
    }
    return nullptr;
}

KvEntry *
KvShard::find(unsigned bucket, KvKey key, unsigned *way) const
{
    return config_.scope == EvictionScope::Bucket
               ? findSlot(bucket, key, way)
               : findChain(bucket, key);
}

KvEntry *
KvShard::bucketVictim(unsigned bucket, unsigned winner,
                      const ShadowOutcome &winner_out, KvOutcome &out,
                      unsigned *way_out, obs::EvictCase &case_out)
{
    // Algorithm 1 transcribed verbatim (cf. AdaptiveCache::
    // chooseVictimWay), with pinned entries skipped in every case.
    KvShadowDir &shadow = *shadows_[winner];
    auto &ways = slots_[bucket];
    const unsigned n = config_.bucketWays;

    if (winner_out.evicted) {
        for (unsigned w = 0; w < n; ++w) {
            KvEntry *e = ways[w];
            if (e && !e->pinned &&
                shadow.foldTag(e->tag) == winner_out.evictedTag) {
                case_out = obs::EvictCase::VictimMatch;
                *way_out = w;
                return e;
            }
        }
    }

    for (unsigned w = 0; w < n; ++w) {
        KvEntry *e = ways[w];
        if (e && !e->pinned &&
            !shadow.containsTag(bucket, shadow.foldTag(e->tag))) {
            case_out = obs::EvictCase::ShadowAbsent;
            *way_out = w;
            return e;
        }
    }

    out.fallback = true;
    case_out = obs::EvictCase::AliasingFallback;
    ++stats_.fallbackEvictions;
    const unsigned start = fallbackPtr_[bucket];
    for (unsigned i = 0; i < n; ++i) {
        const unsigned w = (start + i) % n;
        KvEntry *e = ways[w];
        if (e && !e->pinned) {
            fallbackPtr_[bucket] = (w + 1) % n;
            *way_out = w;
            return e;
        }
    }
    return nullptr; // every entry pinned
}

KvEntry *
KvShard::shardVictim(unsigned bucket, bool leader, unsigned winner,
                     const ShadowOutcome &winner_out, KvOutcome &out,
                     obs::EvictCase &case_out)
{
    // Case-1 analog: the winner's shadow displaced a tag on this very
    // reference; if an unpinned entry of the bucket folds to it,
    // imitate the displacement exactly.
    if (leader && winner_out.evicted) {
        KvShadowDir &shadow = *shadows_[winner];
        for (KvEntry *e = buckets_[bucket].chain; e;
             e = e->chainNext) {
            if (!e->pinned &&
                shadow.foldTag(e->tag) == winner_out.evictedTag) {
                out.directed = true;
                case_out = obs::EvictCase::VictimMatch;
                ++stats_.directedEvictions;
                return e;
            }
        }
    }

    // Case-2 analog: the winner component's own eviction order over
    // the real contents (follower semantics, Sec. 4.7), walked at
    // most bucketWays deep past pinned entries.
    const bool use_lru = winner == kvComponentLru;
    KvEntry *e = use_lru ? recency_.firstCandidate()
                         : lfu_.firstCandidate();
    for (unsigned i = 0; e && i < config_.bucketWays; ++i) {
        if (!e->pinned) {
            case_out = obs::EvictCase::ShadowAbsent;
            return e;
        }
        e = use_lru ? recency_.nextCandidate(e)
                    : lfu_.nextCandidate(e);
    }

    // Case-3 analog (the aliasing fallback of Sec. 3.1): rotate over
    // the buckets for an arbitrary unpinned entry.
    out.fallback = true;
    case_out = obs::EvictCase::AliasingFallback;
    ++stats_.fallbackEvictions;
    for (unsigned i = 0; i < config_.numBuckets; ++i) {
        const unsigned b =
            (fallbackBucket_ + i) & (config_.numBuckets - 1);
        for (KvEntry *c = buckets_[b].chain; c; c = c->chainNext) {
            if (!c->pinned) {
                fallbackBucket_ = (b + 1) & (config_.numBuckets - 1);
                return c;
            }
        }
    }
    return nullptr; // every entry pinned
}

void
KvShard::unlinkEntry(KvEntry *e)
{
    if (e->pinned)
        --pinned_;
    if (config_.scope == EvictionScope::Bucket) {
        auto &ways = slots_[e->bucket];
        for (unsigned w = 0; w < config_.bucketWays; ++w) {
            if (ways[w] == e) {
                ways[w] = nullptr;
                break;
            }
        }
    } else {
        Bucket &b = buckets_[e->bucket];
        if (e->chainPrev)
            e->chainPrev->chainNext = e->chainNext;
        else
            b.chain = e->chainNext;
        if (e->chainNext)
            e->chainNext->chainPrev = e->chainPrev;
        recency_.remove(e);
        lfu_.remove(e);
    }
    --size_;
    delete e;
}

KvOutcome
KvShard::reference(KvKey key, std::uint64_t h,
                   const std::function<std::string()> &make_value,
                   bool overwrite, bool pin, std::string *value_out)
{
    KvOutcome out;
    ++stats_.references;
    const unsigned bucket = bucketOf(h);
    const std::uint64_t tag = tagOf(h);
    const bool leader = isLeader(bucket);

    // Every filling reference updates the component simulations and
    // (on a differentiating miss) the selection history — before the
    // real lookup, exactly as Algorithm 1 orders it.
    ShadowOutcome shadow_out[kvNumComponents] = {};
    if (leader) {
        std::uint32_t miss_mask = 0;
        for (unsigned k = 0; k < kvNumComponents; ++k) {
            shadow_out[k] = shadows_[k]->access(bucket, tag);
            if (shadow_out[k].miss)
                miss_mask |= 1u << k;
        }
        // Flips are rare, so the tracing gate hides behind the flip
        // check; with two components the loser is `winner ^ 1`.
        if (selectorFor(bucket).record(miss_mask) &&
            obs::traceEnabled()) {
            const unsigned to = selectorFor(bucket).winner();
            obs::emit(obs::kvWinnerFlipEvent(stats_.references,
                                             config_.shardIndex,
                                             to ^ 1u, to));
        }
    }

    unsigned hit_way = 0;
    if (KvEntry *e = find(bucket, key, &hit_way)) {
        ++stats_.hits;
        out.hit = true;
        if (config_.scope == EvictionScope::Shard) {
            recency_.moveToFront(e);
            lfu_.onHit(e);
        }
        if (overwrite) {
            e->value = make_value();
            out.updated = true;
            ++stats_.updates;
        }
        if (pin && !e->pinned) {
            e->pinned = true;
            ++pinned_;
        }
        if (value_out)
            *value_out = e->value;
        return out;
    }

    ++stats_.misses;

    unsigned fill_way = config_.bucketWays;
    bool need_evict;
    if (config_.scope == EvictionScope::Bucket) {
        const auto &ways = slots_[bucket];
        for (unsigned w = 0; w < config_.bucketWays; ++w) {
            if (!ways[w]) {
                fill_way = w;
                break;
            }
        }
        need_evict = fill_way == config_.bucketWays;
    } else {
        need_evict = size_ >= config_.capacity;
    }

    if (need_evict) {
        const unsigned winner = selectorFor(bucket).winner();
        out.replaced = true;
        out.winner = winner;
        ++stats_.decisions[winner];
        obs::EvictCase evict_case = obs::EvictCase::VictimMatch;
        KvEntry *victim =
            config_.scope == EvictionScope::Bucket
                ? bucketVictim(bucket, winner, shadow_out[winner],
                               out, &fill_way, evict_case)
                : shardVictim(bucket, leader, winner,
                              shadow_out[winner], out, evict_case);
        if (!victim) {
            out.rejected = true;
            ++stats_.rejected;
            if (value_out)
                *value_out = make_value();
            return out;
        }
        out.evicted = true;
        out.evictedKey = victim->key;
        ++stats_.evictions;
        if (obs::traceEnabled())
            obs::emit(obs::kvEvictionEvent(stats_.references,
                                           config_.shardIndex, winner,
                                           evict_case, victim->key));
        unlinkEntry(victim);
    }

    auto *e = new KvEntry;
    e->key = key;
    e->tag = tag;
    e->bucket = bucket;
    e->pinned = pin;
    e->value = make_value();
    if (pin)
        ++pinned_;
    if (config_.scope == EvictionScope::Bucket) {
        slots_[bucket][fill_way] = e;
    } else {
        Bucket &b = buckets_[bucket];
        e->chainNext = b.chain;
        if (b.chain)
            b.chain->chainPrev = e;
        b.chain = e;
        recency_.pushFront(e);
        lfu_.onInsert(e);
    }
    ++size_;
    ++stats_.inserts;
    out.inserted = true;
    if (value_out)
        *value_out = e->value;
    return out;
}

const std::string *
KvShard::probe(KvKey key, std::uint64_t h)
{
    ++stats_.gets;
    KvEntry *e = find(bucketOf(h), key, nullptr);
    if (!e)
        return nullptr;
    ++stats_.getHits;
    if (config_.scope == EvictionScope::Shard) {
        recency_.moveToFront(e);
        lfu_.onHit(e);
    }
    return &e->value;
}

bool
KvShard::erase(KvKey key, std::uint64_t h)
{
    KvEntry *e = find(bucketOf(h), key, nullptr);
    if (!e)
        return false;
    ++stats_.erases;
    unlinkEntry(e);
    return true;
}

bool
KvShard::setPinned(KvKey key, std::uint64_t h, bool pinned)
{
    KvEntry *e = find(bucketOf(h), key, nullptr);
    if (!e)
        return false;
    if (e->pinned != pinned) {
        e->pinned = pinned;
        pinned_ += pinned ? 1 : -1;
    }
    return true;
}

bool
KvShard::contains(KvKey key, std::uint64_t h) const
{
    return find(bucketOf(h), key, nullptr) != nullptr;
}

std::uint64_t
KvShard::capacity() const
{
    return config_.scope == EvictionScope::Bucket
               ? std::uint64_t(config_.numBuckets) *
                     config_.bucketWays
               : config_.capacity;
}

std::uint64_t
KvShard::shadowMisses(unsigned k) const
{
    return shadows_[k] ? shadows_[k]->misses() : 0;
}

std::uint64_t
KvShard::selectionFlips() const
{
    std::uint64_t flips = 0;
    for (const KvSelector &s : selectors_)
        flips += s.flips();
    return flips;
}

unsigned
KvShard::currentWinner(unsigned bucket) const
{
    return selectorFor(bucket).winner();
}

std::uint64_t
KvShard::historyCount(unsigned bucket, unsigned k) const
{
    return selectorFor(bucket).count(k);
}

std::vector<KvKey>
KvShard::residentKeys() const
{
    std::vector<KvKey> keys;
    keys.reserve(size_);
    if (config_.scope == EvictionScope::Bucket) {
        for (const auto &ways : slots_)
            for (const KvEntry *e : ways)
                if (e)
                    keys.push_back(e->key);
    } else {
        for (const Bucket &b : buckets_)
            for (const KvEntry *e = b.chain; e; e = e->chainNext)
                keys.push_back(e->key);
    }
    return keys;
}

void
KvShard::registerStats(StatRegistry &reg,
                       const std::string &prefix) const
{
    reg.counter(prefix + "references", stats_.references);
    reg.counter(prefix + "hits", stats_.hits);
    reg.counter(prefix + "misses", stats_.misses);
    reg.counter(prefix + "gets", stats_.gets);
    reg.counter(prefix + "get_hits", stats_.getHits);
    reg.counter(prefix + "inserts", stats_.inserts);
    reg.counter(prefix + "updates", stats_.updates);
    reg.counter(prefix + "evictions", stats_.evictions);
    reg.counter(prefix + "directed_evictions",
                stats_.directedEvictions);
    reg.counter(prefix + "fallback_evictions",
                stats_.fallbackEvictions);
    reg.counter(prefix + "rejected_puts", stats_.rejected);
    reg.counter(prefix + "erases", stats_.erases);
    reg.counter(prefix + "decisions.lru",
                stats_.decisions[kvComponentLru]);
    reg.counter(prefix + "decisions.lfu",
                stats_.decisions[kvComponentLfu]);
    reg.counter(prefix + "shadow.lru.misses",
                shadowMisses(kvComponentLru));
    reg.counter(prefix + "shadow.lfu.misses",
                shadowMisses(kvComponentLfu));
    reg.counter(prefix + "selection_flips", selectionFlips());
    reg.counter(prefix + "size", size_);
    reg.counter(prefix + "pinned", pinned_);
    reg.value(prefix + "hit_rate", stats_.hitRate());
}

} // namespace adcache::kv
