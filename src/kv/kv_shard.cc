#include "kv/kv_shard.hh"

#include <algorithm>

#include "core/shadow_cache.hh"
#include "obs/trace.hh"
#include "util/stat_registry.hh"

namespace adcache::kv
{

void
KvShardStats::add(const KvShardStats &o)
{
    references += o.references;
    hits += o.hits;
    misses += o.misses;
    gets += o.gets;
    getHits += o.getHits;
    inserts += o.inserts;
    updates += o.updates;
    evictions += o.evictions;
    directedEvictions += o.directedEvictions;
    fallbackEvictions += o.fallbackEvictions;
    rejected += o.rejected;
    admitRejects += o.admitRejects;
    erases += o.erases;
    for (unsigned k = 0; k < kvNumComponents; ++k)
        decisions[k] += o.decisions[k];
}

double
KvShardStats::hitRate() const
{
    const std::uint64_t total = references + gets;
    return total == 0 ? 0.0
                      : double(hits + getHits) / double(total);
}

KvShardConfig
KvShardConfig::fromCache(const KvConfig &config, unsigned shard_index)
{
    KvShardConfig c;
    const std::uint64_t base = config.capacity / config.numShards;
    const std::uint64_t extra = config.capacity % config.numShards;
    c.capacity = base + (shard_index < extra ? 1 : 0);
    c.numBuckets = config.numBuckets;
    c.bucketWays = config.bucketWays;
    c.leaderEvery = config.leaderEvery;
    c.shadowTagBits = config.shadowTagBits;
    c.xorFoldTags = config.xorFoldTags;
    c.historyDepth =
        config.historyDepth != 0
            ? config.historyDepth
            : (config.scope == EvictionScope::Bucket
                   ? config.bucketWays
                   : 64);
    c.exactCounters = config.exactCounters;
    c.scope = config.scope;
    c.selector = config.selector;
    for (unsigned k = 0; k < kvNumComponents; ++k)
        c.components[k] = config.components[k];
    c.hashShift = floorLog2(config.numShards);
    c.shardIndex = shard_index;
    c.rngSeed = config.rngSeed ^ mixKey(shard_index + 1);
    return c;
}

namespace
{

adapt::Selector
makeShardSelector(const KvShardConfig &config)
{
    const unsigned domains =
        config.scope == EvictionScope::Bucket ? config.numBuckets : 1;
    if (config.selector == SelectorMode::Adaptive)
        return adapt::Selector::makeAdaptive(domains, kvNumComponents,
                                             config.exactCounters,
                                             config.historyDepth);
    return adapt::Selector::makeFixed(
        domains, kvNumComponents,
        config.selector == SelectorMode::FixedLru ? kvComponentLru
                                                  : kvComponentLfu);
}

bool
anyShardAdmission(const KvShardConfig &config)
{
    for (unsigned k = 0; k < kvNumComponents; ++k)
        if (config.components[k].admission)
            return true;
    return false;
}

} // namespace

/**
 * Bucket-scope view: the slot array of one bucket against the
 * winner's shadow directory — the kv twin of the sim layer's
 * WaySetView, with pinned entries invisible in every case.
 */
class KvShard::BucketScopeView
{
  public:
    using Handle = unsigned;
    static constexpr Handle kNone = ~0u;

    BucketScopeView(KvShard &shard, unsigned bucket,
                    const KvShadowDir &shadow)
        : shard_(shard), bucket_(bucket), shadow_(shadow),
          ways_(shard.slots_[bucket]), n_(shard.config_.bucketWays)
    {
    }

    Handle
    findDisplacedMatch(std::uint64_t displaced_tag) const
    {
        for (unsigned w = 0; w < n_; ++w) {
            const KvEntry *e = ways_[w];
            if (e && !e->pinned &&
                shadow_.foldTag(e->tag) == displaced_tag)
                return w;
        }
        return kNone;
    }

    Handle
    findOutsideWinner() const
    {
        for (unsigned w = 0; w < n_; ++w) {
            const KvEntry *e = ways_[w];
            if (e && !e->pinned &&
                !shadow_.containsTag(bucket_,
                                     shadow_.foldTag(e->tag)))
                return w;
        }
        return kNone;
    }

    Handle
    fallback() const
    {
        const unsigned start = shard_.fallbackPtr_[bucket_];
        for (unsigned i = 0; i < n_; ++i) {
            const unsigned w = (start + i) % n_;
            const KvEntry *e = ways_[w];
            if (e && !e->pinned) {
                shard_.fallbackPtr_[bucket_] = (w + 1) % n_;
                return w;
            }
        }
        return kNone; // every entry pinned
    }

  private:
    KvShard &shard_;
    unsigned bucket_;
    const KvShadowDir &shadow_;
    const std::vector<KvEntry *> &ways_;
    unsigned n_;
};

/**
 * Shard-scope view: case 1 walks the referenced bucket's chain for
 * the shadow-displaced tag, case 2 walks the winner component's own
 * eviction order over the real contents (follower semantics,
 * Sec. 4.7) at most bucketWays deep past pinned entries, case 3
 * rotates over the buckets for an arbitrary unpinned entry.
 */
class KvShard::ShardScopeView
{
  public:
    using Handle = KvEntry *;
    static constexpr Handle kNone = nullptr;

    ShardScopeView(KvShard &shard, unsigned bucket, unsigned winner)
        : shard_(shard), bucket_(bucket), winner_(winner)
    {
    }

    Handle
    findDisplacedMatch(std::uint64_t displaced_tag) const
    {
        const KvShadowDir &shadow = *shard_.shadows_[winner_];
        for (KvEntry *e = shard_.buckets_[bucket_].chain; e;
             e = e->chainNext) {
            if (!e->pinned &&
                shadow.foldTag(e->tag) == displaced_tag)
                return e;
        }
        return kNone;
    }

    Handle
    findOutsideWinner() const
    {
        const bool use_lru =
            shard_.config_.components[winner_].evict ==
            PolicyType::LRU;
        KvEntry *e = use_lru ? shard_.recency_.firstCandidate()
                             : shard_.lfu_.firstCandidate();
        for (unsigned i = 0; e && i < shard_.config_.bucketWays;
             ++i) {
            if (!e->pinned)
                return e;
            e = use_lru ? shard_.recency_.nextCandidate(e)
                        : shard_.lfu_.nextCandidate(e);
        }
        return kNone;
    }

    Handle
    fallback() const
    {
        const unsigned mask = shard_.config_.numBuckets - 1;
        for (unsigned i = 0; i < shard_.config_.numBuckets; ++i) {
            const unsigned b = (shard_.fallbackBucket_ + i) & mask;
            for (KvEntry *c = shard_.buckets_[b].chain; c;
                 c = c->chainNext) {
                if (!c->pinned) {
                    shard_.fallbackBucket_ = (b + 1) & mask;
                    return c;
                }
            }
        }
        return kNone; // every entry pinned
    }

  private:
    KvShard &shard_;
    unsigned bucket_;
    unsigned winner_;
};

KvShard::KvShard(const KvShardConfig &config)
    : config_(config), rng_(config.rngSeed),
      bucketBits_(floorLog2(config.numBuckets)),
      selector_(makeShardSelector(config))
{
    adcache_assert(isPowerOfTwo(config_.numBuckets));
    adcache_assert(config_.bucketWays >= 1);
    adcache_assert(config_.leaderEvery >= 1);

    buckets_.assign(config_.numBuckets, Bucket{});
    if (config_.scope == EvictionScope::Bucket) {
        adcache_assert(config_.leaderEvery == 1);
        adcache_assert(config_.selector == SelectorMode::Adaptive);
        slots_.assign(config_.numBuckets,
                      std::vector<KvEntry *>(config_.bucketWays,
                                             nullptr));
        fallbackPtr_.assign(config_.numBuckets, 0);
    }

    if (anyShardAdmission(config_))
        admission_ = std::make_unique<adapt::TinyLfuAdmission>(
            adapt::SketchParams::forGeometry(config_.numBuckets,
                                             config_.bucketWays));

    if (config_.selector == SelectorMode::Adaptive) {
        for (unsigned k = 0; k < kvNumComponents; ++k) {
            // Directories are sized for every bucket but only leader
            // buckets touch them (cf. SbarCache's leader shadows).
            shadows_[k] = std::make_unique<KvShadowDir>(
                config_.numBuckets, config_.bucketWays,
                config_.components[k].evict, config_.shadowTagBits,
                config_.xorFoldTags, &rng_,
                config_.components[k].admission ? admission_.get()
                                                : nullptr);
        }
    }
}

KvShard::~KvShard()
{
    for (Bucket &b : buckets_) {
        KvEntry *e = b.chain;
        while (e) {
            KvEntry *next = e->chainNext;
            delete e;
            e = next;
        }
    }
    for (auto &ways : slots_)
        for (KvEntry *e : ways)
            delete e;
}

unsigned
KvShard::bucketOf(std::uint64_t h) const
{
    return unsigned((h >> config_.hashShift) &
                    (config_.numBuckets - 1));
}

std::uint64_t
KvShard::tagOf(std::uint64_t h) const
{
    return h >> (config_.hashShift + bucketBits_);
}

std::uint64_t
KvShard::admitKey(std::uint64_t tag) const
{
    return shadows_[0] ? std::uint64_t(shadows_[0]->foldTag(tag))
                       : tag;
}

bool
KvShard::isLeader(unsigned bucket) const
{
    return shadows_[0] != nullptr &&
           bucket % config_.leaderEvery == 0;
}

KvEntry *
KvShard::findChain(unsigned bucket, KvKey key) const
{
    for (KvEntry *e = buckets_[bucket].chain; e; e = e->chainNext)
        if (e->key == key)
            return e;
    return nullptr;
}

KvEntry *
KvShard::findSlot(unsigned bucket, KvKey key, unsigned *way) const
{
    const auto &ways = slots_[bucket];
    for (unsigned w = 0; w < config_.bucketWays; ++w) {
        if (ways[w] && ways[w]->key == key) {
            if (way)
                *way = w;
            return ways[w];
        }
    }
    return nullptr;
}

KvEntry *
KvShard::find(unsigned bucket, KvKey key, unsigned *way) const
{
    return config_.scope == EvictionScope::Bucket
               ? findSlot(bucket, key, way)
               : findChain(bucket, key);
}

KvEntry *
KvShard::bucketVictim(unsigned bucket, unsigned winner,
                      const ShadowOutcome &winner_out,
                      unsigned *way_out, adapt::VictimCase &case_out)
{
    // Algorithm 1 (cf. AdaptiveCache), run by the shared engine.
    BucketScopeView view(*this, bucket, *shadows_[winner]);
    const auto choice = adapt::imitateVictim(
        view, winner_out.evicted, winner_out.evictedTag);
    case_out = choice.kind;
    if (choice.handle == BucketScopeView::kNone)
        return nullptr;
    *way_out = choice.handle;
    return slots_[bucket][choice.handle];
}

KvEntry *
KvShard::shardVictim(unsigned bucket, bool leader, unsigned winner,
                     const ShadowOutcome &winner_out,
                     adapt::VictimCase &case_out)
{
    ShardScopeView view(*this, bucket, winner);
    const auto choice = adapt::imitateVictim(
        view, leader && winner_out.evicted, winner_out.evictedTag);
    case_out = choice.kind;
    return choice.handle;
}

void
KvShard::unlinkEntry(KvEntry *e)
{
    if (e->pinned)
        --pinned_;
    if (config_.scope == EvictionScope::Bucket) {
        auto &ways = slots_[e->bucket];
        for (unsigned w = 0; w < config_.bucketWays; ++w) {
            if (ways[w] == e) {
                ways[w] = nullptr;
                break;
            }
        }
    } else {
        Bucket &b = buckets_[e->bucket];
        if (e->chainPrev)
            e->chainPrev->chainNext = e->chainNext;
        else
            b.chain = e->chainNext;
        if (e->chainNext)
            e->chainNext->chainPrev = e->chainPrev;
        recency_.remove(e);
        lfu_.remove(e);
    }
    --size_;
    delete e;
}

KvOutcome
KvShard::reference(KvKey key, std::uint64_t h,
                   const std::function<std::string()> &make_value,
                   bool overwrite, bool pin, std::string *value_out)
{
    KvOutcome out;
    ++stats_.references;
    const unsigned bucket = bucketOf(h);
    const std::uint64_t tag = tagOf(h);
    const bool leader = isLeader(bucket);

    // The admission filter sees every candidate before any component
    // simulation consults it (same order as AdaptiveCache and the
    // oracle).
    if (admission_)
        admission_->touch(admitKey(tag));

    // Every filling reference updates the component simulations and
    // (on a differentiating miss) the selection history — before the
    // real lookup, exactly as Algorithm 1 orders it.
    ShadowOutcome shadow_out[kvNumComponents] = {};
    if (leader) {
        std::uint32_t miss_mask = 0;
        for (unsigned k = 0; k < kvNumComponents; ++k) {
            shadow_out[k] = shadows_[k]->access(bucket, tag);
            if (shadow_out[k].miss)
                miss_mask |= 1u << k;
        }
        // Flips are rare, so the tracing gate hides behind the flip
        // check; with two components the loser is `winner ^ 1`.
        if (selector_.record(domainOf(bucket), miss_mask) &&
            obs::traceEnabled()) {
            const unsigned to = selector_.winner(domainOf(bucket));
            obs::emit(obs::kvWinnerFlipEvent(stats_.references,
                                             config_.shardIndex,
                                             to ^ 1u, to));
        }
    }

    unsigned hit_way = 0;
    if (KvEntry *e = find(bucket, key, &hit_way)) {
        ++stats_.hits;
        out.hit = true;
        if (config_.scope == EvictionScope::Shard) {
            recency_.moveToFront(e);
            lfu_.onHit(e);
        }
        if (overwrite) {
            e->value = make_value();
            out.updated = true;
            ++stats_.updates;
        }
        if (pin && !e->pinned) {
            e->pinned = true;
            ++pinned_;
        }
        if (value_out)
            *value_out = e->value;
        return out;
    }

    ++stats_.misses;

    unsigned fill_way = config_.bucketWays;
    bool need_evict;
    if (config_.scope == EvictionScope::Bucket) {
        const auto &ways = slots_[bucket];
        for (unsigned w = 0; w < config_.bucketWays; ++w) {
            if (!ways[w]) {
                fill_way = w;
                break;
            }
        }
        need_evict = fill_way == config_.bucketWays;
    } else {
        need_evict = size_ >= config_.capacity;
    }

    if (need_evict) {
        const unsigned winner = selector_.winner(domainOf(bucket));
        out.replaced = true;
        out.winner = winner;
        ++stats_.decisions[winner];

        // Bucket scope imitates the winner's admission verdict: when
        // its shadow refused to fill, the real bucket keeps its
        // contents too. The decision is still counted — "bypass" was
        // the winning component's replacement choice.
        if (config_.scope == EvictionScope::Bucket &&
            shadow_out[winner].bypassed) {
            out.admitRejected = true;
            ++stats_.admitRejects;
            if (obs::traceEnabled())
                obs::emit(obs::kvAdmitRejectEvent(stats_.references,
                                                  config_.shardIndex,
                                                  winner, key));
            if (value_out)
                *value_out = make_value();
            return out;
        }

        adapt::VictimCase evict_case = adapt::VictimCase::VictimMatch;
        KvEntry *victim =
            config_.scope == EvictionScope::Bucket
                ? bucketVictim(bucket, winner, shadow_out[winner],
                               &fill_way, evict_case)
                : shardVictim(bucket, leader, winner,
                              shadow_out[winner], evict_case);
        if (!victim) {
            // Pins defeated every search: the fallback rotation is
            // still accounted (it ran and found nothing) and the
            // insertion is rejected.
            out.fallback = true;
            ++stats_.fallbackEvictions;
            out.rejected = true;
            ++stats_.rejected;
            if (value_out)
                *value_out = make_value();
            return out;
        }

        // Shard scope queries the filter on the real (candidate,
        // victim) pair — there is no per-reference shadow verdict to
        // imitate for follower buckets or fixed selectors.
        if (config_.scope == EvictionScope::Shard && admission_ &&
            config_.components[winner].admission &&
            !admission_->admit(admitKey(tag),
                               admitKey(victim->tag))) {
            out.admitRejected = true;
            ++stats_.admitRejects;
            if (obs::traceEnabled())
                obs::emit(obs::kvAdmitRejectEvent(stats_.references,
                                                  config_.shardIndex,
                                                  winner, key));
            if (value_out)
                *value_out = make_value();
            return out;
        }

        switch (evict_case) {
          case adapt::VictimCase::VictimMatch:
            if (config_.scope == EvictionScope::Shard) {
                out.directed = true;
                ++stats_.directedEvictions;
            }
            break;
          case adapt::VictimCase::ShadowAbsent:
            break;
          default:
            out.fallback = true;
            ++stats_.fallbackEvictions;
            break;
        }

        out.evicted = true;
        out.evictedKey = victim->key;
        ++stats_.evictions;
        if (obs::traceEnabled())
            obs::emit(obs::kvEvictionEvent(
                stats_.references, config_.shardIndex, winner,
                toEvictCase(evict_case), victim->key));
        unlinkEntry(victim);
    }

    auto *e = new KvEntry;
    e->key = key;
    e->tag = tag;
    e->bucket = bucket;
    e->pinned = pin;
    e->value = make_value();
    if (pin)
        ++pinned_;
    if (config_.scope == EvictionScope::Bucket) {
        slots_[bucket][fill_way] = e;
    } else {
        Bucket &b = buckets_[bucket];
        e->chainNext = b.chain;
        if (b.chain)
            b.chain->chainPrev = e;
        b.chain = e;
        recency_.pushFront(e);
        lfu_.onInsert(e);
    }
    ++size_;
    ++stats_.inserts;
    out.inserted = true;
    if (value_out)
        *value_out = e->value;
    return out;
}

const std::string *
KvShard::probe(KvKey key, std::uint64_t h)
{
    ++stats_.gets;
    KvEntry *e = find(bucketOf(h), key, nullptr);
    if (!e)
        return nullptr;
    ++stats_.getHits;
    if (config_.scope == EvictionScope::Shard) {
        recency_.moveToFront(e);
        lfu_.onHit(e);
    }
    return &e->value;
}

bool
KvShard::erase(KvKey key, std::uint64_t h)
{
    KvEntry *e = find(bucketOf(h), key, nullptr);
    if (!e)
        return false;
    ++stats_.erases;
    unlinkEntry(e);
    return true;
}

bool
KvShard::setPinned(KvKey key, std::uint64_t h, bool pinned)
{
    KvEntry *e = find(bucketOf(h), key, nullptr);
    if (!e)
        return false;
    if (e->pinned != pinned) {
        e->pinned = pinned;
        pinned_ += pinned ? 1 : -1;
    }
    return true;
}

bool
KvShard::contains(KvKey key, std::uint64_t h) const
{
    return find(bucketOf(h), key, nullptr) != nullptr;
}

std::uint64_t
KvShard::capacity() const
{
    return config_.scope == EvictionScope::Bucket
               ? std::uint64_t(config_.numBuckets) *
                     config_.bucketWays
               : config_.capacity;
}

std::uint64_t
KvShard::shadowMisses(unsigned k) const
{
    return shadows_[k] ? shadows_[k]->misses() : 0;
}

std::uint64_t
KvShard::selectionFlips() const
{
    return selector_.flips();
}

unsigned
KvShard::currentWinner(unsigned bucket) const
{
    return selector_.winner(domainOf(bucket));
}

std::uint64_t
KvShard::historyCount(unsigned bucket, unsigned k) const
{
    return selector_.count(domainOf(bucket), k);
}

std::vector<KvKey>
KvShard::residentKeys() const
{
    std::vector<KvKey> keys;
    keys.reserve(size_);
    if (config_.scope == EvictionScope::Bucket) {
        for (const auto &ways : slots_)
            for (const KvEntry *e : ways)
                if (e)
                    keys.push_back(e->key);
    } else {
        for (const Bucket &b : buckets_)
            for (const KvEntry *e = b.chain; e; e = e->chainNext)
                keys.push_back(e->key);
    }
    return keys;
}

void
KvShard::registerStats(StatRegistry &reg,
                       const std::string &prefix) const
{
    reg.counter(prefix + "references", stats_.references);
    reg.counter(prefix + "hits", stats_.hits);
    reg.counter(prefix + "misses", stats_.misses);
    reg.counter(prefix + "gets", stats_.gets);
    reg.counter(prefix + "get_hits", stats_.getHits);
    reg.counter(prefix + "inserts", stats_.inserts);
    reg.counter(prefix + "updates", stats_.updates);
    reg.counter(prefix + "evictions", stats_.evictions);
    reg.counter(prefix + "directed_evictions",
                stats_.directedEvictions);
    reg.counter(prefix + "fallback_evictions",
                stats_.fallbackEvictions);
    reg.counter(prefix + "rejected_puts", stats_.rejected);
    reg.counter(prefix + "erases", stats_.erases);
    for (unsigned k = 0; k < kvNumComponents; ++k) {
        const std::string name =
            kvComponentName(config_.components[k]);
        reg.counter(prefix + "decisions." + name,
                    stats_.decisions[k]);
        reg.counter(prefix + "shadow." + name + ".misses",
                    shadowMisses(k));
    }
    reg.counter(prefix + "selection_flips", selectionFlips());
    if (admission_)
        reg.counter(prefix + "admit_rejects", stats_.admitRejects);
    reg.counter(prefix + "size", size_);
    reg.counter(prefix + "pinned", pinned_);
    reg.value(prefix + "hit_rate", stats_.hitRate());
}

} // namespace adcache::kv
