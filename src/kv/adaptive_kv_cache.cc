#include "kv/adaptive_kv_cache.hh"

#include <cstdio>
#include <sstream>

#include "obs/latency.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/stat_registry.hh"

namespace adcache::kv
{

namespace
{

/**
 * Times one facade operation (two clock reads) into the calling
 * thread's latency histogram; free when ADCACHE_LAT is off. Only the
 * public get/fetch/put are timed — the bare reference() path the
 * perf_regress matrix drives stays untouched.
 */
class ScopedOpTimer
{
  public:
    explicit ScopedOpTimer(obs::KvOp op) : op_(op)
    {
        if (obs::latencyEnabled()) {
            t0_ = obs::nowNs();
            live_ = true;
        }
    }

    ~ScopedOpTimer()
    {
        if (live_)
            obs::recordLatency(op_, obs::nowNs() - t0_);
    }

    ScopedOpTimer(const ScopedOpTimer &) = delete;
    ScopedOpTimer &operator=(const ScopedOpTimer &) = delete;

    /** Reclassify before destruction (Get -> GetSlow when the
     *  lock-free path fell back to the mutex). */
    void reclass(obs::KvOp op) { op_ = op; }

  private:
    obs::KvOp op_;
    std::uint64_t t0_ = 0;
    bool live_ = false;
};

} // namespace

AdaptiveKvCache::AdaptiveKvCache(const KvConfig &config)
    : config_(config), shardMask_(config.numShards - 1),
      locks_(config.numShards)
{
    config_.validate();
    shards_.reserve(config_.numShards);
    for (unsigned i = 0; i < config_.numShards; ++i) {
        KvShardConfig sc = KvShardConfig::fromCache(config_, i);
        sc.clock = &clock_;
        shards_.push_back(std::make_unique<KvShard>(sc));
    }
}

std::uint64_t
AdaptiveKvCache::clockNow() const
{
    return clock_.load(std::memory_order_seq_cst);
}

void
AdaptiveKvCache::clockAdvance(std::uint64_t ticks)
{
    clock_.fetch_add(ticks, std::memory_order_seq_cst);
}

void
AdaptiveKvCache::clockAdvanceTo(std::uint64_t now)
{
    std::uint64_t cur = clock_.load(std::memory_order_seq_cst);
    while (cur < now &&
           !clock_.compare_exchange_weak(cur, now,
                                         std::memory_order_seq_cst,
                                         std::memory_order_seq_cst)) {
    }
}

std::uint64_t
AdaptiveKvCache::hashOf(KvKey key) const
{
    return config_.keyHash == KeyHashKind::Mix ? mixKey(key) : key;
}

unsigned
AdaptiveKvCache::shardOf(KvKey key) const
{
    return unsigned(hashOf(key) & shardMask_);
}

std::optional<std::string>
AdaptiveKvCache::get(KvKey key)
{
    ScopedOpTimer timer(obs::KvOp::Get);
    const std::uint64_t h = hashOf(key);
    const unsigned s = unsigned(h & shardMask_);
    KvShard &shard = *shards_[s];

    unsigned retries = 0;
    if (shard.lockFreeEnabled()) {
        std::string value;
        auto result = KvShard::ProbeResult::NeedSlow;
        {
            // The guard scope ends before any mutex wait so a
            // blocked reader never stalls epoch advancement.
            EpochGuard guard;
            if (guard.engaged())
                result = shard.tryProbe(key, h, &value, &retries);
        }
        switch (result) {
          case KvShard::ProbeResult::Hit:
            return value;
          case KvShard::ProbeResult::Miss:
            return std::nullopt;
          case KvShard::ProbeResult::NeedTouchDrain: {
            timer.reclass(obs::KvOp::GetSlow);
            std::scoped_lock lock(locks_[s]);
            shard.touchSlow(key, h);
            return value;
          }
          case KvShard::ProbeResult::NeedSlow:
            timer.reclass(obs::KvOp::GetSlow);
            break;
        }
    }

    std::scoped_lock lock(locks_[s]);
    const std::string *v = shard.probe(key, h, retries);
    if (!v)
        return std::nullopt;
    return *v;
}

std::size_t
AdaptiveKvCache::getMany(std::span<const KvKey> keys,
                         std::optional<std::string> *out)
{
    const std::size_t n = keys.size();
    if (n == 0)
        return 0;
    if (n == 1) {
        out[0] = get(keys[0]);
        return out[0].has_value() ? 1 : 0;
    }
    ScopedOpTimer timer(obs::KvOp::GetMany);

    // Scratch: key hashes, a to-do index list, the current shard
    // group, per-member lock-free verdicts and retry counts. Stack
    // for the common pipeline depths, one heap block beyond.
    constexpr std::size_t kStackBatch = 64;
    struct Scratch
    {
        std::uint64_t h;
        std::uint32_t todo;
        std::uint32_t group;
        std::uint32_t retries;
        std::uint8_t verdict;
    };
    Scratch stack[kStackBatch];
    std::vector<Scratch> heap;
    Scratch *sc = stack;
    if (n > kStackBatch) {
        heap.resize(n);
        sc = heap.data();
    }
    for (std::size_t i = 0; i < n; ++i) {
        sc[i].h = hashOf(keys[i]);
        sc[i].todo = std::uint32_t(i);
        out[i].reset();
    }

    enum : std::uint8_t { kDone, kTouch, kSlow };
    std::size_t hits = 0;
    std::size_t remaining = n;
    while (remaining > 0) {
        // Peel the first pending key's shard group off the to-do
        // list; both the group and the remainder keep their relative
        // order, so within-shard processing order matches a serial
        // replay of the batch.
        const unsigned s = unsigned(sc[sc[0].todo].h & shardMask_);
        std::size_t m = 0, rest = 0;
        for (std::size_t i = 0; i < remaining; ++i) {
            const std::uint32_t idx = sc[i].todo;
            if (unsigned(sc[idx].h & shardMask_) == s)
                sc[m++].group = idx;
            else
                sc[rest++].todo = idx;
        }
        remaining = rest;

        KvShard &shard = *shards_[s];
        bool need_lock = true;
        if (shard.lockFreeEnabled()) {
            need_lock = false;
            // One epoch guard covers the whole shard group.
            EpochGuard guard;
            std::string value;
            for (std::size_t j = 0; j < m; ++j) {
                const std::uint32_t idx = sc[j].group;
                if (!guard.engaged()) {
                    sc[j].verdict = kSlow;
                    sc[idx].retries = 0;
                    need_lock = true;
                    continue;
                }
                unsigned retries = 0;
                const auto result = shard.tryProbe(
                    keys[idx], sc[idx].h, &value, &retries);
                sc[idx].retries = retries;
                switch (result) {
                  case KvShard::ProbeResult::Hit:
                    out[idx].emplace(std::move(value));
                    ++hits;
                    sc[j].verdict = kDone;
                    break;
                  case KvShard::ProbeResult::Miss:
                    sc[j].verdict = kDone;
                    break;
                  case KvShard::ProbeResult::NeedTouchDrain:
                    out[idx].emplace(std::move(value));
                    ++hits;
                    sc[j].verdict = kTouch;
                    need_lock = true;
                    break;
                  case KvShard::ProbeResult::NeedSlow:
                    sc[j].verdict = kSlow;
                    need_lock = true;
                    break;
                }
            }
        } else {
            for (std::size_t j = 0; j < m; ++j) {
                sc[j].verdict = kSlow;
                sc[sc[j].group].retries = 0;
            }
        }
        if (!need_lock)
            continue;
        // One mutex window (after the guard scope, so a blocked
        // batch never stalls epoch advancement) resolves every
        // deferred member in group order.
        std::scoped_lock lock(locks_[s]);
        for (std::size_t j = 0; j < m; ++j) {
            const std::uint32_t idx = sc[j].group;
            if (sc[j].verdict == kTouch) {
                shard.touchSlow(keys[idx], sc[idx].h);
            } else if (sc[j].verdict == kSlow) {
                const std::string *v = shard.probe(
                    keys[idx], sc[idx].h, sc[idx].retries);
                if (v) {
                    out[idx].emplace(*v);
                    ++hits;
                }
            }
        }
    }
    return hits;
}

std::vector<std::optional<std::string>>
AdaptiveKvCache::getMany(std::span<const KvKey> keys)
{
    std::vector<std::optional<std::string>> out(keys.size());
    getMany(keys, out.data());
    return out;
}

std::string
AdaptiveKvCache::fetch(KvKey key,
                       const std::function<std::string()> &loader,
                       std::uint64_t ttl)
{
    ScopedOpTimer timer(obs::KvOp::Fetch);
    const std::uint64_t h = hashOf(key);
    const unsigned s = unsigned(h & shardMask_);
    std::string value;
    std::scoped_lock lock(locks_[s]);
    shards_[s]->reference(key, h, loader, /*overwrite=*/false,
                          /*pin=*/false, &value, ttl);
    return value;
}

KvOutcome
AdaptiveKvCache::put(KvKey key, std::string_view value, bool pinned,
                     std::uint64_t ttl)
{
    ScopedOpTimer timer(obs::KvOp::Put);
    const std::uint64_t h = hashOf(key);
    const unsigned s = unsigned(h & shardMask_);
    std::scoped_lock lock(locks_[s]);
    return shards_[s]->reference(
        key, h, [&] { return std::string(value); },
        /*overwrite=*/true, pinned, nullptr, ttl);
}

KvOutcome
AdaptiveKvCache::reference(KvKey key, std::string_view value,
                           bool overwrite, std::uint64_t ttl)
{
    const std::uint64_t h = hashOf(key);
    const unsigned s = unsigned(h & shardMask_);
    std::scoped_lock lock(locks_[s]);
    return shards_[s]->reference(
        key, h, [&] { return std::string(value); }, overwrite,
        /*pin=*/false, nullptr, ttl);
}

bool
AdaptiveKvCache::erase(KvKey key)
{
    const std::uint64_t h = hashOf(key);
    const unsigned s = unsigned(h & shardMask_);
    std::scoped_lock lock(locks_[s]);
    return shards_[s]->erase(key, h);
}

bool
AdaptiveKvCache::setPinned(KvKey key, bool pinned)
{
    const std::uint64_t h = hashOf(key);
    const unsigned s = unsigned(h & shardMask_);
    KvShard &shard = *shards_[s];
    if (shard.lockFreeEnabled()) {
        int done = -1;
        {
            EpochGuard guard;
            if (guard.engaged())
                done = shard.trySetPinned(key, h, pinned);
        }
        if (done >= 0)
            return done == 1;
    }
    std::scoped_lock lock(locks_[s]);
    return shard.setPinned(key, h, pinned);
}

bool
AdaptiveKvCache::pin(KvKey key)
{
    return setPinned(key, true);
}

bool
AdaptiveKvCache::unpin(KvKey key)
{
    return setPinned(key, false);
}

bool
AdaptiveKvCache::contains(KvKey key) const
{
    const std::uint64_t h = hashOf(key);
    const unsigned s = unsigned(h & shardMask_);
    const KvShard &shard = *shards_[s];
    if (shard.lockFreeEnabled()) {
        int resident = -1;
        {
            EpochGuard guard;
            if (guard.engaged())
                resident = shard.containsRelaxed(key, h);
        }
        if (resident >= 0)
            return resident == 1;
    }
    std::scoped_lock lock(locks_[s]);
    return shard.contains(key, h);
}

std::size_t
AdaptiveKvCache::size() const
{
    std::size_t total = 0;
    for (unsigned s = 0; s < shards_.size(); ++s) {
        std::scoped_lock lock(locks_[s]);
        total += shards_[s]->size();
    }
    return total;
}

std::uint64_t
AdaptiveKvCache::capacity() const
{
    return config_.totalCapacity();
}

void
AdaptiveKvCache::registerStats(StatRegistry &reg,
                               const std::string &prefix,
                               bool per_shard) const
{
    KvShardStats total;
    std::uint64_t shadow_misses[kvNumComponents] = {0, 0};
    std::uint64_t flips = 0, size = 0, pinned = 0;
    for (unsigned s = 0; s < shards_.size(); ++s) {
        std::scoped_lock lock(locks_[s]);
        total.add(shards_[s]->stats());
        for (unsigned k = 0; k < kvNumComponents; ++k)
            shadow_misses[k] += shards_[s]->shadowMisses(k);
        flips += shards_[s]->selectionFlips();
        size += shards_[s]->size();
        pinned += shards_[s]->pinnedCount();
        if (per_shard) {
            char sub[16];
            std::snprintf(sub, sizeof sub, "shard%02u.", s);
            shards_[s]->registerStats(reg, prefix + sub);
        }
    }
    reg.counter(prefix + "references", total.references);
    reg.counter(prefix + "hits", total.hits);
    reg.counter(prefix + "misses", total.misses);
    reg.counter(prefix + "gets", total.gets);
    reg.counter(prefix + "get_hits", total.getHits);
    reg.counter(prefix + "inserts", total.inserts);
    reg.counter(prefix + "updates", total.updates);
    reg.counter(prefix + "evictions", total.evictions);
    reg.counter(prefix + "directed_evictions",
                total.directedEvictions);
    reg.counter(prefix + "fallback_evictions",
                total.fallbackEvictions);
    reg.counter(prefix + "rejected_puts", total.rejected);
    reg.counter(prefix + "erases", total.erases);
    reg.counter(prefix + "expirations", total.expirations);
    reg.counter(prefix + "read_retries", total.readRetries);
    reg.counter(prefix + "slow_probes", total.slowProbes);
    reg.counter(prefix + "diff_misses", total.diffMisses);
    for (unsigned k = 0; k < kvNumComponents; ++k) {
        const std::string name =
            kvComponentName(config_.components[k]);
        reg.counter(prefix + "decisions." + name,
                    total.decisions[k]);
        reg.counter(prefix + "shadow." + name + ".misses",
                    shadow_misses[k]);
    }
    reg.counter(prefix + "selection_flips", flips);
    if (config_.anyAdmission())
        reg.counter(prefix + "admit_rejects", total.admitRejects);
    reg.counter(prefix + "size", size);
    reg.counter(prefix + "pinned", pinned);
    reg.counter(prefix + "capacity", capacity());
    reg.value(prefix + "hit_rate", total.hitRate());
}

std::vector<KvShardTelemetry>
AdaptiveKvCache::shardTelemetry() const
{
    std::vector<KvShardTelemetry> out(shards_.size());
    for (unsigned s = 0; s < shards_.size(); ++s) {
        std::scoped_lock lock(locks_[s]);
        const KvShardStats snap = shards_[s]->stats();
        KvShardTelemetry &t = out[s];
        t.references = snap.references;
        t.hits = snap.hits;
        t.misses = snap.misses;
        t.gets = snap.gets;
        t.getHits = snap.getHits;
        t.evictions = snap.evictions;
        t.admitRejects = snap.admitRejects;
        t.expirations = snap.expirations;
        t.readRetries = snap.readRetries;
        t.slowProbes = snap.slowProbes;
        t.selectionFlips = shards_[s]->selectionFlips();
        t.diffMisses = snap.diffMisses;
        t.size = shards_[s]->size();
        t.pinned = shards_[s]->pinnedCount();
        t.winner = shards_[s]->currentWinner();
    }
    return out;
}

void
AdaptiveKvCache::registerMetrics(obs::MetricsRegistry &reg) const
{
    reg.addCollector(
        [this](obs::MetricsSink &sink) { collectMetrics(sink); });
}

void
AdaptiveKvCache::collectMetrics(obs::MetricsSink &sink) const
{
    const std::vector<KvShardTelemetry> shards = shardTelemetry();

    KvShardTelemetry total;
    for (const KvShardTelemetry &t : shards) {
        total.references += t.references;
        total.hits += t.hits;
        total.misses += t.misses;
        total.gets += t.gets;
        total.getHits += t.getHits;
        total.evictions += t.evictions;
        total.admitRejects += t.admitRejects;
        total.expirations += t.expirations;
        total.readRetries += t.readRetries;
        total.slowProbes += t.slowProbes;
        total.selectionFlips += t.selectionFlips;
        total.diffMisses += t.diffMisses;
        total.size += t.size;
        total.pinned += t.pinned;
    }

    auto c = [&](const char *name, double v, const char *help) {
        sink.counter(name, {}, v, help);
    };
    c("adcache_kv_references_total", double(total.references),
      "Filling references (fetch/put)");
    c("adcache_kv_hits_total", double(total.hits),
      "Filling-reference hits");
    c("adcache_kv_misses_total", double(total.misses),
      "Filling-reference misses");
    c("adcache_kv_gets_total", double(total.gets),
      "Non-filling probes");
    c("adcache_kv_get_hits_total", double(total.getHits),
      "Non-filling probe hits");
    c("adcache_kv_evictions_total", double(total.evictions),
      "Entries evicted");
    c("adcache_kv_admit_rejects_total", double(total.admitRejects),
      "Candidates the admission filter refused");
    c("adcache_kv_expirations_total", double(total.expirations),
      "Lazy TTL removals");
    c("adcache_kv_read_retries_total", double(total.readRetries),
      "Optimistic reads that re-walked a bucket");
    c("adcache_kv_slow_probes_total", double(total.slowProbes),
      "Reads that fell back to the shard mutex");
    c("adcache_kv_selection_flips_total",
      double(total.selectionFlips), "Winner changes, all shards");
    c("adcache_kv_diff_misses_total", double(total.diffMisses),
      "Leader references where the components disagreed");
    sink.gauge("adcache_kv_size", {}, double(total.size),
               "Resident entries");
    sink.gauge("adcache_kv_pinned", {}, double(total.pinned),
               "Pinned entries");
    sink.gauge("adcache_kv_capacity", {}, double(capacity()),
               "Configured capacity in entries");
    sink.gauge("adcache_kv_hit_rate", {}, total.hitRate(),
               "Combined hit rate since start");

    for (unsigned s = 0; s < shards.size(); ++s) {
        const KvShardTelemetry &t = shards[s];
        const obs::MetricLabels labels = {
            {"shard", std::to_string(s)}};
        auto sc = [&](const char *name, double v) {
            sink.counter(name, labels, v, "");
        };
        sc("adcache_kv_shard_hits_total", double(t.hits + t.getHits));
        sc("adcache_kv_shard_misses_total",
           double(t.misses + (t.gets - t.getHits)));
        sc("adcache_kv_shard_evictions_total", double(t.evictions));
        sc("adcache_kv_shard_selection_flips_total",
           double(t.selectionFlips));
        sc("adcache_kv_shard_diff_misses_total",
           double(t.diffMisses));
        sink.gauge("adcache_kv_shard_winner", labels,
                   double(t.winner),
                   "Component ordinal of the shard's winner");
        sink.gauge("adcache_kv_shard_hit_rate", labels, t.hitRate(),
                   "");
    }
    // Winner ordinal → policy name decoder ring, info-style.
    for (unsigned k = 0; k < kvNumComponents; ++k)
        sink.gauge("adcache_kv_component_info",
                   {{"ordinal", std::to_string(k)},
                    {"policy",
                     kvComponentName(config_.components[k])}},
                   1.0, "Winner-ordinal to policy-name mapping");
}

std::string
AdaptiveKvCache::describe() const
{
    std::ostringstream out;
    out << "AdaptiveKV[" << selectorModeName(config_.selector);
    if (config_.selector == SelectorMode::Adaptive)
        out << ": " << kvComponentName(config_.components[0]) << "+"
            << kvComponentName(config_.components[1]);
    out << "] (" << capacity() << " entries, " << config_.numShards
        << " shards x " << config_.numBuckets << " buckets";
    if (config_.scope == EvictionScope::Bucket) {
        out << ", bucket scope x" << config_.bucketWays;
    } else {
        out << ", shard scope, leaders every "
            << config_.leaderEvery;
    }
    if (config_.selector == SelectorMode::Adaptive) {
        if (config_.shadowTagBits == 0)
            out << ", full shadow tags";
        else
            out << ", " << config_.shadowTagBits
                << "-bit shadow tags";
        if (config_.exactCounters)
            out << ", exact counters";
        else
            out << ", m=" << shards_[0]->config().historyDepth;
    }
    out << ")";
    return out.str();
}

} // namespace adcache::kv
