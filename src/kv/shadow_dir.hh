/**
 * @file
 * Partial-hash shadow directory for the kv cache: simulates what a
 * pure component policy (LRU or LFU) would keep for the keys of each
 * bucket, holding folded key tags only — never values (Secs. 2.2 and
 * 3.1 re-hosted on the key-hash domain).
 *
 * Internally this is the production ShadowCache driven through a
 * synthetic address mapping (bucket -> set index, key tag -> block
 * tag), so partial-tag folding, false-positive aliasing, and the
 * per-set replacement metadata are byte-for-byte the semantics the
 * differential oracle already verifies.
 */

#ifndef ADCACHE_KV_SHADOW_DIR_HH
#define ADCACHE_KV_SHADOW_DIR_HH

#include <cstdint>

#include "core/shadow_cache.hh"
#include "kv/kv_types.hh"

namespace adcache::kv
{

/** Tag-only component-policy simulation over (bucket, key tag). */
class KvShadowDir
{
  public:
    /**
     * @param num_buckets  buckets covered (power of two).
     * @param ways         directory associativity per bucket.
     * @param policy       component policy simulated.
     * @param partial_bits stored tag width (0 = full key tags).
     * @param xor_fold     fold via XOR of bit groups, not low bits.
     * @param rng          shared generator (stochastic policies).
     * @param admission    optional TinyLFU filter (not owned); the
     *                     owning shard touch()es it per reference.
     */
    KvShadowDir(unsigned num_buckets, unsigned ways, PolicyType policy,
                unsigned partial_bits, bool xor_fold, Rng *rng,
                const adapt::TinyLfuAdmission *admission = nullptr);

    /** Simulate the component policy for one key reference. */
    ShadowOutcome access(std::uint32_t bucket, std::uint64_t key_tag);

    /** Fold a key tag into the stored-tag domain. */
    Addr foldTag(std::uint64_t key_tag) const;

    /** Membership of @p stored_tag in @p bucket's directory. */
    bool containsTag(std::uint32_t bucket, Addr stored_tag) const;

    std::uint64_t misses() const { return shadow_.misses(); }
    std::uint64_t accesses() const { return shadow_.accesses(); }
    PolicyType policyType() const { return shadow_.policyType(); }

  private:
    Addr addrOf(std::uint32_t bucket, std::uint64_t key_tag) const;

    CacheGeometry geom_;
    std::uint64_t tagMask_; //!< keeps key tags reconstructible
    ShadowCache shadow_;
};

} // namespace adcache::kv

#endif // ADCACHE_KV_SHADOW_DIR_HH
