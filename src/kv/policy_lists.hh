/**
 * @file
 * The shard-wide component-policy structures of the adaptive kv
 * cache: an intrusive recency list (LRU order over every resident
 * entry) and O(1) LFU frequency lists (doubly-linked frequency nodes
 * each holding its entries in recency order, after the classic
 * constant-time LFU construction).
 *
 * Both expose the same candidate-walk interface — firstCandidate()
 * is the entry the pure policy would evict, nextCandidate() the next
 * choice — so the shard can skip pinned entries without either
 * structure knowing pins exist.
 *
 * KvEntry is the single intrusive node type: one entry is linked
 * simultaneously into its hash-bucket chain, the recency list, and
 * one LFU frequency node, exactly the way the paper keeps every
 * component's metadata alive on the real blocks at all times
 * (Sec. 4.7 follower semantics).
 *
 * Concurrency split (docs/KVCACHE.md "Concurrency model"): the
 * fields lock-free readers may touch are atomic — the forward chain
 * link, the value pointer, and the pin word. key/tag/bucket are
 * immutable once the entry is published into its bucket chain, and
 * every other link is owned by the shard mutex.
 */

#ifndef ADCACHE_KV_POLICY_LISTS_HH
#define ADCACHE_KV_POLICY_LISTS_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "kv/kv_types.hh"

namespace adcache::kv
{

struct FreqNode;

/** One resident key-value entry (intrusively linked everywhere). */
struct KvEntry
{
    /** pinState layout: bit 31 = dying (claimed for removal), bit 0
     *  = pinned. Pinning is a flag, not a refcount — pin() of an
     *  already-pinned entry is a no-op, matching the locked
     *  semantics this replaces. */
    static constexpr std::uint32_t kPinnedBit = 1u;
    static constexpr std::uint32_t kDyingBit = 0x8000'0000u;

    KvKey key = 0;
    std::uint64_t tag = 0; //!< key tag (hash above shard+bucket bits)
    std::uint32_t bucket = 0;
    std::atomic<std::uint32_t> pinState{0};

    /** The stored value, published as an immutable heap string so a
     *  lock-free reader can copy it without tearing; overwrites swap
     *  the pointer and retire the old string through the epoch
     *  domain. Never null while the entry is linked. */
    std::atomic<const std::string *> value{nullptr};

    /** Logical-clock expiry stamp; 0 = never expires. Written at
     *  insert (and refreshed by overwriting puts) under the shard
     *  mutex; lock-free probes read it and treat an expired entry as
     *  a validated miss. Removal is lazy: the physical unlink waits
     *  for the next locked contact with the entry. */
    std::atomic<std::uint64_t> expiry{0};

    ~KvEntry() { delete value.load(std::memory_order_relaxed); }

    bool
    isPinned() const
    {
        return (pinState.load(std::memory_order_seq_cst) &
                kPinnedBit) != 0;
    }

    // Hash-bucket chain (EvictionScope::Shard lookup). chainNext is
    // the readers' traversal link; chainPrev is mutex-only.
    KvEntry *chainPrev = nullptr;
    std::atomic<KvEntry *> chainNext{nullptr};

    // Recency (LRU) list; head = most recent.
    KvEntry *lruPrev = nullptr;
    KvEntry *lruNext = nullptr;

    // LFU frequency-node membership; node lists are recency-ordered
    // (head = oldest at that frequency, the eviction tie-break).
    KvEntry *lfuPrev = nullptr;
    KvEntry *lfuNext = nullptr;
    FreqNode *freqNode = nullptr;
};

/** One LFU frequency class: entries referenced freq times. */
struct FreqNode
{
    std::uint32_t freq = 1;
    KvEntry *head = nullptr; //!< oldest at this frequency
    KvEntry *tail = nullptr; //!< newest at this frequency
    FreqNode *prev = nullptr;
    FreqNode *next = nullptr;
};

/** Intrusive recency list over all resident entries of a shard. */
class RecencyList
{
  public:
    /** Insert @p e as most recent. @pre e is unlinked. */
    void pushFront(KvEntry *e);

    /** Mark @p e most recent. */
    void moveToFront(KvEntry *e);

    /** Unlink @p e. */
    void remove(KvEntry *e);

    /** The pure-LRU victim (least recent), or nullptr if empty. */
    KvEntry *firstCandidate() const { return tail_; }

    /** Next-best victim after @p e (toward the recent end). */
    KvEntry *nextCandidate(const KvEntry *e) const
    {
        return e->lruPrev;
    }

    bool empty() const { return head_ == nullptr; }

  private:
    KvEntry *head_ = nullptr;
    KvEntry *tail_ = nullptr;
};

/**
 * O(1) LFU: frequency nodes in ascending order, each holding its
 * entries oldest-first. Victim order is (lowest frequency, then
 * oldest within it) — the production LFU's tie-break-oldest
 * semantics. Frequencies saturate at kMaxFreq; saturated hits only
 * refresh recency within the top node, mirroring a saturating
 * hardware counter that stops counting but keeps ordering.
 */
class LfuLists
{
  public:
    static constexpr std::uint32_t kMaxFreq = 255;

    LfuLists() = default;
    ~LfuLists();

    LfuLists(const LfuLists &) = delete;
    LfuLists &operator=(const LfuLists &) = delete;

    /** Enter @p e at frequency 1. @pre e is unlinked. */
    void onInsert(KvEntry *e);

    /** Promote @p e one frequency class (saturating). */
    void onHit(KvEntry *e);

    /** Unlink @p e (its frequency class may disappear). */
    void remove(KvEntry *e);

    /** The pure-LFU victim, or nullptr if empty. */
    KvEntry *firstCandidate() const;

    /** Next-best victim after @p e (same class toward newest, then
     *  the next frequency class's oldest). */
    KvEntry *nextCandidate(const KvEntry *e) const;

    bool empty() const { return nodes_ == nullptr; }

  private:
    void append(FreqNode *node, KvEntry *e);
    void detach(KvEntry *e);

    FreqNode *nodes_ = nullptr; //!< ascending frequency order
};

} // namespace adcache::kv

#endif // ADCACHE_KV_POLICY_LISTS_HH
