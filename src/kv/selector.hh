/**
 * @file
 * Policy selector of the kv cache: the m-bit differentiating-miss
 * history of Sec. 2.2 (or its exact-counter theory form) plus flip
 * accounting, with fixed-policy modes for baseline shards.
 *
 * One selector serves a whole shard in EvictionScope::Shard (trained
 * by every leader bucket, the SBAR-style global selection) or one
 * bucket in EvictionScope::Bucket (the per-set form of Algorithm 1).
 */

#ifndef ADCACHE_KV_SELECTOR_HH
#define ADCACHE_KV_SELECTOR_HH

#include <cstdint>
#include <memory>

#include "core/miss_history.hh"
#include "kv/kv_types.hh"

namespace adcache::kv
{

/** Chooses the imitated component for one selection domain. */
class KvSelector
{
  public:
    /**
     * @param mode  Adaptive or a fixed baseline.
     * @param exact exact since-start counters (theory form).
     * @param depth window depth m (ignored when exact).
     */
    KvSelector(SelectorMode mode, bool exact, unsigned depth);

    KvSelector(KvSelector &&) = default;
    KvSelector &operator=(KvSelector &&) = default;

    /**
     * Present one shadow miss mask (bit k set iff component k
     * missed). Non-differentiating masks (none/all missed) are
     * ignored, as is everything in fixed modes. Returns true iff
     * this observation changed the selection.
     */
    bool record(std::uint32_t miss_mask);

    /** The component to imitate right now. */
    unsigned winner() const;

    /** Times the selection changed sides. */
    std::uint64_t flips() const { return flips_; }

    /** Recorded miss weight of component @p k (0 in fixed modes). */
    std::uint64_t count(unsigned k) const;

    bool adaptive() const { return mode_ == SelectorMode::Adaptive; }

  private:
    SelectorMode mode_;
    std::unique_ptr<MissHistory> history_; //!< null in fixed modes
    unsigned lastWinner_ = kvComponentLru;
    std::uint64_t flips_ = 0;
};

} // namespace adcache::kv

#endif // ADCACHE_KV_SELECTOR_HH
