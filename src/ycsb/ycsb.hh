/**
 * @file
 * YCSB-style multi-client benchmark driver for the serving
 * subsystem. Implements the core workload mixes A–F of Cooper et
 * al.'s Yahoo! Cloud Serving Benchmark over either transport — the
 * deterministic in-process loopback or real sockets — against a
 * KvService hosting an AdaptiveKvCache:
 *
 *   A  update-heavy   50% read / 50% update        Zipf
 *   B  read-heavy     95% read /  5% update        Zipf
 *   C  read-only     100% read                     Zipf
 *   D  read-latest    95% read /  5% insert        latest-window
 *   E  short-ranges   95% scan /  5% insert        Zipf start rank
 *   F  read-mod-write 50% read / 50% RMW           Zipf
 *
 * The run has the classic two phases. The LOAD phase warms the store:
 * each client owns a disjoint slice of the record space
 * (KeyStreamSpec::forClient with disjoint = true) and PUTs every
 * record it owns. The RUN phase issues each client's op mix from a
 * seeded per-client KeyStream (same key population across clients —
 * the rank-to-key mapping is seed-independent), timing every op into
 * per-client, per-op-class obs::LatencyHistogram instances that merge
 * into the result after the clients join, so the reported
 * p50/p95/p99/p999 are fleet-wide.
 *
 * Scenario injection (docs/SERVING.md): at a configurable fraction of
 * the run each client flips into the scenario regime — a hot-key
 * storm (a fraction of reads collapse onto the top-ranked key),
 * a backend slowdown (the service's read-through loader stalls; this
 * is what the SLO gate's fail-closed demonstration drives), or shard
 * loss (requests routed to dead shards answer Error).
 *
 * SLO mode: YcsbResult::readP99Ns() against a budget is the
 * fail-closed gate perf_regress --slo enforces.
 */

#ifndef ADCACHE_YCSB_YCSB_HH
#define ADCACHE_YCSB_YCSB_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/latency.hh"
#include "workloads/key_stream.hh"

namespace adcache
{
class StatRegistry;
}

namespace adcache::net
{
class KvService;
}

namespace adcache::obs
{
class MetricsRegistry;
}

namespace adcache::ycsb
{

/** Operation classes latencies are reported per. */
enum class OpClass : unsigned
{
    Read = 0,
    Update = 1,
    Insert = 2,
    Scan = 3,
    ReadModifyWrite = 4,
    Delete = 5,
    /** Pipelined read batch (YcsbConfig::pipelineDepth > 1): one
     *  latency sample per batch, ops counted per key. */
    MGet = 6,
};

inline constexpr unsigned kNumOpClasses = 7;

/** Canonical lower-case name ("read", "rmw", ...). */
const char *opClassName(OpClass c);

/** Mid-run scenario injections. */
enum class Scenario
{
    None,
    HotKeyStorm,     //!< reads collapse onto the top-ranked key
    BackendSlowdown, //!< read-through loader stalls (needs service)
    ShardLoss,       //!< dead shards answer Error (needs service)
};

const char *scenarioName(Scenario s);

/**
 * Transport abstraction the driver issues ops through. Both bundled
 * transports implement it: see makeLoopbackConnection() and
 * makeSocketConnection(). One connection per client thread.
 */
class Connection
{
  public:
    virtual ~Connection() = default;

    virtual std::optional<std::string> get(std::uint64_t key) = 0;
    virtual bool put(std::uint64_t key, std::string_view value,
                     std::uint32_t ttl) = 0;
    virtual bool del(std::uint64_t key) = 0;

    /**
     * Batched read: out[i] answers keys[i]. The default loops get()
     * so every transport supports pipelined mode; both bundled
     * transports override it with one MGet round trip.
     */
    virtual std::vector<std::optional<std::string>>
    mget(const std::vector<std::uint64_t> &keys)
    {
        std::vector<std::optional<std::string>> out;
        out.reserve(keys.size());
        for (const std::uint64_t key : keys)
            out.push_back(get(key));
        return out;
    }
};

/** In-process connection straight into @p service. */
std::unique_ptr<Connection>
makeLoopbackConnection(net::KvService &service);

/** Socket connection to @p host:@p port (null on connect failure). */
std::unique_ptr<Connection>
makeSocketConnection(const std::string &host, std::uint16_t port);

/** Parameters of one YCSB run. */
struct YcsbConfig
{
    char workload = 'a'; //!< 'a'..'f'

    /** Records in the dataset: request ranks draw from [0, records).
     *  The canonical paper setting is ~10M with Zipf 0.99. */
    std::uint64_t records = 1 << 20;

    /**
     * Records PUT during the load phase (0 = min(records, 64K)).
     * A cache is not a store: loading more than the cache holds only
     * burns time, so the load phase warms the top of the popularity
     * ranking and the read-through loader backs the rest.
     */
    std::uint64_t loadRecords = 0;

    std::uint64_t opsPerClient = 100'000;
    unsigned clients = 4;

    double zipfSkew = 0.99;

    /** Value payload sizes (variable when min < max). */
    ValueSpec values{100, 100};

    /** TTL stamped on every put, in cache clock ticks (0 = never).
     *  When nonzero the driver advances the service cache's logical
     *  clock every clockEvery ops so entries actually lapse. */
    std::uint32_t ttl = 0;
    std::uint64_t clockEvery = 64;

    /** Fraction of ops carved out of the mix as DELETEs. */
    double deleteRatio = 0.0;

    /** Workload E: GETs per scan run. */
    std::uint64_t scanLen = 16;

    /** Workload D: recency window reads draw over. */
    std::uint64_t latestWindow = 1 << 16;

    /**
     * Read-class pipelining: when > 1, each Read draw issues a batch
     * of this many keys through Connection::mget (one round trip on
     * both bundled transports) and is timed into OpClass::MGet —
     * one latency sample per batch, ops counted per key. 1 = the
     * classic one-get-per-op driver.
     */
    unsigned pipelineDepth = 1;

    /** Validate the identity header of every read value. */
    bool validate = true;

    std::uint64_t seed = 1;

    Scenario scenario = Scenario::None;
    /** Fraction of each client's ops after which the scenario arms. */
    double scenarioAt = 0.5;
    /** HotKeyStorm: fraction of post-trigger reads on the hot key. */
    double hotFraction = 0.5;
    /** BackendSlowdown: loader stall armed at the trigger. */
    std::uint32_t slowdownUs = 1000;
    /** ShardLoss: dead-shard mask armed at the trigger. */
    std::uint64_t deadShardMask = 1;

    /**
     * When set, the driver registers live benchmark metrics here —
     * ycsb_load_ops_total, and per-op-class ycsb_ops_total{op=},
     * ycsb_failures_total{op=}, ycsb_op_latency_ns{op=} — and every
     * client thread feeds them as it runs (the registry's per-thread
     * shards make that contention-free), so a concurrent scrape
     * watches the run live and the final scrape matches the
     * YcsbResult totals.
     */
    obs::MetricsRegistry *metrics = nullptr;

    /** "A" .. "F" with the headline mix, for reports. */
    std::string describe() const;
};

/** Per-op-class outcome. */
struct OpClassResult
{
    std::uint64_t ops = 0;
    /** NotFound / refused ops (expected under scenarios). */
    std::uint64_t failures = 0;
    obs::LatencyHistogram latency;
};

/** Outcome of one YCSB run. */
struct YcsbResult
{
    double loadSeconds = 0;
    double runSeconds = 0;
    std::uint64_t loadOps = 0;
    std::uint64_t runOps = 0;
    /** Error responses observed (shard loss / transport trouble). */
    std::uint64_t errors = 0;
    /** Reads whose value failed identity validation. */
    std::uint64_t validationFailures = 0;

    std::array<OpClassResult, kNumOpClasses> classes{};

    const OpClassResult &
    of(OpClass c) const
    {
        return classes[unsigned(c)];
    }

    double opsPerSec() const;

    /**
     * The SLO metric: p99 over the read-dominated op class (Read,
     * falling back to MGet under pipelining, then Scan for workload
     * E). 0 when nothing ran.
     */
    double readP99Ns() const;

    /**
     * Register ops/s plus per-op-class count / failures /
     * p50/p95/p99/p999 under @p reg — the standard report path.
     */
    void registerInto(StatRegistry &reg) const;
};

/** Multi-client load + run driver (see file comment). */
class YcsbDriver
{
  public:
    /** Makes client @p index's connection (called on the client's
     *  own thread for socket transports' sake). */
    using ConnectionFactory =
        std::function<std::unique_ptr<Connection>(unsigned index)>;

    /**
     * @param service the served instance, for scenario injection and
     *        clock advancement; may be null for a remote-only client
     *        (then BackendSlowdown/ShardLoss/TTL-clock are inert).
     */
    YcsbDriver(const YcsbConfig &config, net::KvService *service,
               ConnectionFactory factory);

    /** Execute the load phase then the run phase. */
    YcsbResult run();

  private:
    YcsbConfig config_;
    net::KvService *service_;
    ConnectionFactory factory_;
};

} // namespace adcache::ycsb

#endif // ADCACHE_YCSB_YCSB_HH
