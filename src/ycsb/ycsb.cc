#include "ycsb/ycsb.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "net/client.hh"
#include "net/loopback.hh"
#include "net/service.hh"
#include "obs/metrics.hh"
#include "util/logging.hh"
#include "util/stat_registry.hh"

namespace adcache::ycsb
{

namespace
{

using Clock = std::chrono::steady_clock;

std::uint64_t
elapsedNs(Clock::time_point since)
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - since)
            .count());
}

double
toSeconds(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

/** Probability of each op class in a workload's mix. */
struct Mix
{
    double read = 0;
    double update = 0;
    double insert = 0;
    double scan = 0;
    double rmw = 0;
};

Mix
mixFor(char workload)
{
    switch (workload) {
      case 'a':
        return {.read = 0.5, .update = 0.5};
      case 'b':
        return {.read = 0.95, .update = 0.05};
      case 'c':
        return {.read = 1.0};
      case 'd':
        return {.read = 0.95, .insert = 0.05};
      case 'e':
        return {.insert = 0.05, .scan = 0.95};
      case 'f':
        return {.read = 0.5, .rmw = 0.5};
      default:
        adcache_assert(!"unknown YCSB workload (want 'a'..'f')");
        return {};
    }
}

class LoopbackYcsbConnection final : public Connection
{
  public:
    explicit LoopbackYcsbConnection(net::KvService &service)
        : conn_(service)
    {
    }

    std::optional<std::string>
    get(std::uint64_t key) override
    {
        return conn_.get(key);
    }

    bool
    put(std::uint64_t key, std::string_view value,
        std::uint32_t ttl) override
    {
        return conn_.put(key, value, ttl);
    }

    bool del(std::uint64_t key) override { return conn_.del(key); }

    std::vector<std::optional<std::string>>
    mget(const std::vector<std::uint64_t> &keys) override
    {
        return conn_.mget(keys);
    }

  private:
    net::LoopbackConnection conn_;
};

class SocketYcsbConnection final : public Connection
{
  public:
    std::optional<std::string>
    get(std::uint64_t key) override
    {
        return client_.get(key);
    }

    bool
    put(std::uint64_t key, std::string_view value,
        std::uint32_t ttl) override
    {
        return client_.put(key, value, ttl);
    }

    bool del(std::uint64_t key) override { return client_.del(key); }

    std::vector<std::optional<std::string>>
    mget(const std::vector<std::uint64_t> &keys) override
    {
        return client_.mget(keys);
    }

    net::KvClient &client() { return client_; }

  private:
    net::KvClient client_;
};

/** Everything one client thread accumulates; merged after join. */
struct ClientState
{
    std::array<OpClassResult, kNumOpClasses> classes{};
    std::uint64_t errors = 0;
    std::uint64_t validationFailures = 0;
    std::uint64_t loadOps = 0;
    std::uint64_t runOps = 0;
};

} // namespace

const char *
opClassName(OpClass c)
{
    switch (c) {
      case OpClass::Read:
        return "read";
      case OpClass::Update:
        return "update";
      case OpClass::Insert:
        return "insert";
      case OpClass::Scan:
        return "scan";
      case OpClass::ReadModifyWrite:
        return "rmw";
      case OpClass::Delete:
        return "delete";
      case OpClass::MGet:
        return "mget";
    }
    return "?";
}

const char *
scenarioName(Scenario s)
{
    switch (s) {
      case Scenario::None:
        return "none";
      case Scenario::HotKeyStorm:
        return "hot_key_storm";
      case Scenario::BackendSlowdown:
        return "backend_slowdown";
      case Scenario::ShardLoss:
        return "shard_loss";
    }
    return "?";
}

std::unique_ptr<Connection>
makeLoopbackConnection(net::KvService &service)
{
    return std::make_unique<LoopbackYcsbConnection>(service);
}

std::unique_ptr<Connection>
makeSocketConnection(const std::string &host, std::uint16_t port)
{
    auto conn = std::make_unique<SocketYcsbConnection>();
    if (!conn->client().connect(host, port))
        return nullptr;
    return conn;
}

std::string
YcsbConfig::describe() const
{
    const Mix mix = mixFor(workload);
    std::ostringstream out;
    out << char(workload - 'a' + 'A') << " zipf(" << zipfSkew << ")@"
        << records << " " << values.describe();
    if (mix.scan > 0)
        out << " scan" << scanLen;
    if (ttl)
        out << " ttl" << ttl;
    if (deleteRatio > 0)
        out << " del" << deleteRatio;
    if (pipelineDepth > 1)
        out << " p" << pipelineDepth;
    if (scenario != Scenario::None)
        out << " +" << scenarioName(scenario);
    return out.str();
}

double
YcsbResult::opsPerSec() const
{
    return runSeconds > 0 ? double(runOps) / runSeconds : 0;
}

double
YcsbResult::readP99Ns() const
{
    const OpClassResult &read = of(OpClass::Read);
    if (read.latency.count() > 0)
        return read.latency.percentileNs(0.99);
    const OpClassResult &mget = of(OpClass::MGet);
    if (mget.latency.count() > 0)
        return mget.latency.percentileNs(0.99);
    const OpClassResult &scan = of(OpClass::Scan);
    if (scan.latency.count() > 0)
        return scan.latency.percentileNs(0.99);
    return 0;
}

void
YcsbResult::registerInto(StatRegistry &reg) const
{
    reg.value("ops_per_sec", opsPerSec());
    reg.value("load_seconds", loadSeconds);
    reg.value("run_seconds", runSeconds);
    reg.counter("load_ops", loadOps);
    reg.counter("run_ops", runOps);
    reg.counter("errors", errors);
    reg.counter("validation_failures", validationFailures);
    for (unsigned c = 0; c < kNumOpClasses; ++c) {
        const OpClassResult &r = classes[c];
        if (r.ops == 0)
            continue;
        const std::string prefix =
            std::string(opClassName(OpClass(c))) + ".";
        reg.counter(prefix + "ops", r.ops);
        reg.counter(prefix + "failures", r.failures);
        r.latency.registerInto(reg, prefix);
    }
}

YcsbDriver::YcsbDriver(const YcsbConfig &config,
                       net::KvService *service,
                       ConnectionFactory factory)
    : config_(config), service_(service), factory_(std::move(factory))
{
    adcache_assert(config_.workload >= 'a' &&
                   config_.workload <= 'f');
    adcache_assert(config_.clients >= 1);
    adcache_assert(config_.records >= 1);
    adcache_assert(config_.deleteRatio >= 0 &&
                   config_.deleteRatio < 1);
    adcache_assert(factory_ != nullptr);
}

YcsbResult
YcsbDriver::run()
{
    const Mix mix = mixFor(config_.workload);
    const std::uint64_t load_records =
        config_.loadRecords
            ? std::min(config_.loadRecords, config_.records)
            : std::min<std::uint64_t>(config_.records, 64 * 1024);

    // The base spec every per-client stream derives from. The run
    // phase draws the full Zipf distribution per client (seed-salted
    // only); the load phase re-derives a disjoint Scan slice of the
    // first load_records ranks from the same base.
    KeyStreamSpec base;
    base.pattern = KeyPattern::Zipf;
    base.keySpace = config_.records;
    base.skew = config_.zipfSkew;
    base.seed = config_.seed;

    std::vector<ClientState> states(config_.clients);
    std::vector<std::thread> threads;
    std::atomic<unsigned> loadFailures{0};

    // Live-metrics handles (inert when no registry is wired). Each
    // client thread increments through its own per-thread shard, so
    // sharing the handles across the fleet costs nothing.
    struct OpHandles
    {
        obs::Counter ops;
        obs::Counter failures;
        obs::HistogramHandle latency;
    };
    obs::Counter loadOpsCounter;
    std::array<OpHandles, kNumOpClasses> handles{};
    if (config_.metrics) {
        loadOpsCounter = config_.metrics->counter(
            "ycsb_load_ops_total", "LOAD-phase puts issued");
        for (unsigned c = 0; c < kNumOpClasses; ++c) {
            const obs::MetricLabels labels{
                {"op", opClassName(OpClass(c))}};
            handles[c].ops = config_.metrics->counter(
                "ycsb_ops_total", "RUN-phase ops issued", labels);
            handles[c].failures = config_.metrics->counter(
                "ycsb_failures_total",
                "RUN-phase ops answered NotFound/Error", labels);
            handles[c].latency = config_.metrics->histogram(
                "ycsb_op_latency_ns", "Per-op latency", labels);
        }
    }

    // --- LOAD phase: each client PUTs its disjoint record slice. ---
    const Clock::time_point load_start = Clock::now();
    for (unsigned ci = 0; ci < config_.clients; ++ci) {
        threads.emplace_back([&, ci] {
            std::unique_ptr<Connection> conn = factory_(ci);
            if (!conn) {
                loadFailures.fetch_add(1,
                                       std::memory_order_seq_cst);
                return;
            }
            KeyStreamSpec mine =
                base.forClient(ci, config_.clients,
                               /*disjoint_slice=*/true);
            mine.pattern = KeyPattern::Scan;
            mine.keySpace = std::max<std::uint64_t>(load_records, 1);
            mine.scanSpan = 0;
            KeyStream stream(mine);
            ClientState &st = states[ci];
            for (std::uint64_t i = 0; i < stream.rankSpace(); ++i) {
                const std::uint64_t key = stream.next();
                if (!conn->put(key,
                               valueFor(key, config_.values),
                               config_.ttl))
                    ++st.errors;
                ++st.loadOps;
                loadOpsCounter.inc();
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    threads.clear();
    const Clock::time_point load_end = Clock::now();
    adcache_assert(loadFailures.load(std::memory_order_seq_cst) ==
                   0);

    // --- RUN phase. ---
    // Workload D/E inserts append fresh records after the dataset;
    // the cursor is global so "latest" is fleet-wide latest.
    std::atomic<std::uint64_t> insertCursor{config_.records};
    std::atomic<bool> scenarioArmed{false};
    const std::uint64_t trigger_op = std::uint64_t(
        config_.scenarioAt * double(config_.opsPerClient));

    const Clock::time_point run_start = Clock::now();
    for (unsigned ci = 0; ci < config_.clients; ++ci) {
        threads.emplace_back([&, ci] {
            std::unique_ptr<Connection> conn = factory_(ci);
            if (!conn)
                return;
            ClientState &st = states[ci];
            KeyStream stream(
                base.forClient(ci, config_.clients, false));
            Rng rng(stream.spec().seed ^ 0x5cb5'cb5cULL);
            // Workload D: recency sampler over a bounded window.
            std::unique_ptr<ZipfSampler> latest;
            if (config_.workload == 'd')
                latest = std::make_unique<ZipfSampler>(
                    std::max<std::uint64_t>(config_.latestWindow, 1),
                    config_.zipfSkew);

            const auto armScenario = [&] {
                if (config_.scenario == Scenario::None)
                    return;
                if (scenarioArmed.exchange(
                        true, std::memory_order_seq_cst))
                    return;
                if (!service_)
                    return;
                if (config_.scenario == Scenario::BackendSlowdown)
                    service_->setFetchDelayUs(config_.slowdownUs);
                else if (config_.scenario == Scenario::ShardLoss)
                    service_->setDeadShardMask(
                        config_.deadShardMask);
            };

            const auto readKey = [&](bool post_trigger)
                -> std::uint64_t {
                if (config_.scenario == Scenario::HotKeyStorm &&
                    post_trigger &&
                    rng.chance(config_.hotFraction))
                    return stream.keyAt(0); // the hot key
                if (config_.workload == 'd') {
                    const std::uint64_t cursor = insertCursor.load(
                        std::memory_order_seq_cst);
                    std::uint64_t back = (*latest)(rng);
                    if (back >= cursor)
                        back = cursor - 1;
                    return stream.keyAt(cursor - 1 - back);
                }
                return stream.keyAt(stream.nextRank());
            };

            const auto timeInto = [&](OpClass c,
                                      std::uint64_t ns,
                                      bool ok) {
                OpClassResult &r = st.classes[unsigned(c)];
                ++r.ops;
                if (!ok)
                    ++r.failures;
                r.latency.add(ns);
                OpHandles &h = handles[unsigned(c)];
                h.ops.inc();
                if (!ok)
                    h.failures.inc();
                h.latency.observe(ns);
            };

            // Batched variant: the whole batch is one latency
            // sample, ops/failures count per key.
            const auto timeBatch = [&](OpClass c, std::uint64_t ns,
                                       std::uint64_t ops,
                                       std::uint64_t failures) {
                OpClassResult &r = st.classes[unsigned(c)];
                r.ops += ops;
                r.failures += failures;
                r.latency.add(ns);
                OpHandles &h = handles[unsigned(c)];
                h.ops.inc(ops);
                h.failures.inc(failures);
                h.latency.observe(ns);
            };

            const auto checkValue =
                [&](std::uint64_t key, const std::string &value) {
                    if (!config_.validate)
                        return;
                    const std::string header =
                        "v" + std::to_string(key) + ":";
                    if (value.compare(0, header.size(), header) != 0)
                        ++st.validationFailures;
                };

            std::vector<std::uint64_t> batchKeys; // reused
            // Batched ops can step over any given multiple of
            // clockEvery, so the TTL clock advances on a threshold
            // cursor instead of op % clockEvery.
            std::uint64_t next_clock_at = 0;
            for (std::uint64_t op = 0;
                 op < config_.opsPerClient;) {
                // Ops consumed this draw: 1, or the batch size when
                // a pipelined Read issues an MGet.
                std::uint64_t advanced = 1;
                const bool post_trigger = op >= trigger_op;
                if (op == trigger_op)
                    armScenario();
                if (config_.ttl && service_ &&
                    config_.clockEvery && op >= next_clock_at) {
                    service_->cache().clockAdvance();
                    next_clock_at = op + config_.clockEvery;
                }

                // Pick the op class: deletes carve the top of the
                // unit interval, the workload mix shares the rest.
                double u = rng.uniform();
                OpClass cls;
                if (u < config_.deleteRatio) {
                    cls = OpClass::Delete;
                } else {
                    u = (u - config_.deleteRatio) /
                        (1.0 - config_.deleteRatio);
                    if (u < mix.read)
                        cls = OpClass::Read;
                    else if (u < mix.read + mix.update)
                        cls = OpClass::Update;
                    else if (u <
                             mix.read + mix.update + mix.insert)
                        cls = OpClass::Insert;
                    else if (u < mix.read + mix.update +
                                     mix.insert + mix.scan)
                        cls = OpClass::Scan;
                    else
                        cls = OpClass::ReadModifyWrite;
                }

                switch (cls) {
                  case OpClass::Read: {
                    if (config_.pipelineDepth > 1) {
                        // One MGet batch consumes up to depth ops,
                        // never crossing the scenario trigger (it
                        // must arm at exactly trigger_op).
                        std::uint64_t batch = std::min<std::uint64_t>(
                            config_.pipelineDepth,
                            config_.opsPerClient - op);
                        if (op < trigger_op)
                            batch = std::min(batch, trigger_op - op);
                        batchKeys.clear();
                        for (std::uint64_t i = 0; i < batch; ++i)
                            batchKeys.push_back(
                                readKey(post_trigger));
                        const Clock::time_point t0 = Clock::now();
                        const auto vs = conn->mget(batchKeys);
                        const std::uint64_t ns = elapsedNs(t0);
                        std::uint64_t misses = 0;
                        for (std::size_t i = 0; i < batchKeys.size();
                             ++i) {
                            if (i < vs.size() && vs[i])
                                checkValue(batchKeys[i], *vs[i]);
                            else
                                ++misses;
                        }
                        st.errors += misses;
                        timeBatch(OpClass::MGet, ns, batch, misses);
                        advanced = batch;
                        break;
                    }
                    const std::uint64_t key = readKey(post_trigger);
                    const Clock::time_point t0 = Clock::now();
                    const auto v = conn->get(key);
                    const std::uint64_t ns = elapsedNs(t0);
                    if (v)
                        checkValue(key, *v);
                    else
                        ++st.errors;
                    timeInto(OpClass::Read, ns, v.has_value());
                    break;
                  }
                  case OpClass::Update: {
                    const std::uint64_t key = readKey(post_trigger);
                    const std::string value =
                        valueFor(key, config_.values);
                    const Clock::time_point t0 = Clock::now();
                    const bool ok =
                        conn->put(key, value, config_.ttl);
                    timeInto(OpClass::Update, elapsedNs(t0), ok);
                    if (!ok)
                        ++st.errors;
                    break;
                  }
                  case OpClass::Insert: {
                    const std::uint64_t rank =
                        insertCursor.fetch_add(
                            1, std::memory_order_seq_cst);
                    const std::uint64_t key = stream.keyAt(rank);
                    const std::string value =
                        valueFor(key, config_.values);
                    const Clock::time_point t0 = Clock::now();
                    const bool ok =
                        conn->put(key, value, config_.ttl);
                    timeInto(OpClass::Insert, elapsedNs(t0), ok);
                    if (!ok)
                        ++st.errors;
                    break;
                  }
                  case OpClass::Scan: {
                    const std::uint64_t r0 = stream.nextRank();
                    bool ok = true;
                    const Clock::time_point t0 = Clock::now();
                    for (std::uint64_t i = 0; i < config_.scanLen;
                         ++i) {
                        const std::uint64_t rank =
                            (r0 + i) % config_.records;
                        if (!conn->get(stream.keyAt(rank))) {
                            ok = false;
                            ++st.errors;
                        }
                    }
                    timeInto(OpClass::Scan, elapsedNs(t0), ok);
                    break;
                  }
                  case OpClass::ReadModifyWrite: {
                    const std::uint64_t key = readKey(post_trigger);
                    const Clock::time_point t0 = Clock::now();
                    const auto v = conn->get(key);
                    const bool ok =
                        v && conn->put(key,
                                       valueFor(key,
                                                config_.values),
                                       config_.ttl);
                    timeInto(OpClass::ReadModifyWrite,
                             elapsedNs(t0), ok);
                    if (!ok)
                        ++st.errors;
                    break;
                  }
                  case OpClass::Delete: {
                    const std::uint64_t key = readKey(post_trigger);
                    const Clock::time_point t0 = Clock::now();
                    // NotFound is a fine answer for a delete; only
                    // time it, don't count it as an error.
                    const bool ok = conn->del(key);
                    timeInto(OpClass::Delete, elapsedNs(t0), ok);
                    break;
                  }
                }
                op += advanced;
                st.runOps += advanced;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    const Clock::time_point run_end = Clock::now();

    YcsbResult result;
    result.loadSeconds = toSeconds(load_start, load_end);
    result.runSeconds = toSeconds(run_start, run_end);
    for (const ClientState &st : states) {
        result.loadOps += st.loadOps;
        result.runOps += st.runOps;
        result.errors += st.errors;
        result.validationFailures += st.validationFailures;
        for (unsigned c = 0; c < kNumOpClasses; ++c) {
            result.classes[c].ops += st.classes[c].ops;
            result.classes[c].failures += st.classes[c].failures;
            result.classes[c].latency.merge(st.classes[c].latency);
        }
    }
    return result;
}

} // namespace adcache::ycsb
