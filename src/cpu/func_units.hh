/**
 * @file
 * Functional-unit pools matching Table 1: 4 integer ALUs (1 cycle),
 * 4 integer mult/div (8 cycles), 4 FP ALUs (4 cycles), 4 FP mult/div
 * (16 cycles) and 2 memory ports. Each pool schedules the earliest
 * available unit at or after an instruction's ready time.
 */

#ifndef ADCACHE_CPU_FUNC_UNITS_HH
#define ADCACHE_CPU_FUNC_UNITS_HH

#include <array>
#include <vector>

#include "trace/instr.hh"
#include "util/types.hh"

namespace adcache
{

/** Per-class unit counts and execution latencies. */
struct FuncUnitConfig
{
    unsigned intAluCount = 4;
    unsigned intMultCount = 4;
    unsigned fpAddCount = 4;
    unsigned fpDivCount = 4;
    unsigned memPortCount = 2;

    Cycle intAluLatency = 1;
    Cycle intMultLatency = 8;
    Cycle fpAddLatency = 4;
    Cycle fpDivLatency = 16;
};

/**
 * Tracks busy-until times of every unit and assigns work greedily.
 * Units are fully pipelined except for their issue slot: a unit can
 * accept a new operation one cycle after the previous one issued,
 * which approximates the pipelined FUs of the modelled machine while
 * still creating structural hazards under bursts.
 */
class FuncUnits
{
  public:
    explicit FuncUnits(const FuncUnitConfig &config = {});

    /**
     * Schedule an operation of class @p cls that becomes ready at
     * @p ready.
     * @return the cycle the operation issues (>= ready).
     *
     * Loads/stores schedule their address-generation/memory-port slot
     * here; the cache latency is added by the caller.
     */
    Cycle issue(InstrClass cls, Cycle ready);

    /** Execution latency of class @p cls (1 for loads/stores: port
     *  occupancy only; memory time is modelled by the hierarchy). */
    Cycle latency(InstrClass cls) const;

  private:
    std::vector<Cycle> &poolFor(InstrClass cls);

    FuncUnitConfig config_;
    std::vector<Cycle> intAlu_;
    std::vector<Cycle> intMult_;
    std::vector<Cycle> fpAdd_;
    std::vector<Cycle> fpDiv_;
    std::vector<Cycle> memPort_;
};

} // namespace adcache

#endif // ADCACHE_CPU_FUNC_UNITS_HH
