/**
 * @file
 * Trace-driven out-of-order timing model.
 *
 * This replaces the paper's MASE/SimpleScalar substrate. It is a
 * one-pass scheduling model: every dynamic instruction is assigned
 * fetch, dispatch, issue, completion and retire times subject to the
 * machine's resources —
 *
 *  - fetch/dispatch/retire width (Table 1: 8-wide),
 *  - ROB (64) and reservation-station (32) occupancy,
 *  - register dependences (true data dependences from the trace),
 *  - functional-unit pools and latencies (Table 1),
 *  - two memory ports, with load latency supplied by the cache
 *    hierarchy (so independent misses overlap and expose MLP, while
 *    the shared bus serialises them under contention),
 *  - branch mispredictions (hybrid predictor + BTB) which stall the
 *    fetch stream until resolution plus a refill penalty,
 *  - a finite store buffer claimed at retirement; when full,
 *    retirement (and transitively the whole window) stalls.
 *
 * The model processes instructions in program order and touches the
 * caches in program order, so the reference stream seen by the cache
 * hierarchy is identical across core configurations — which is what
 * makes MPKI comparisons independent of timing details, exactly as in
 * a trace-driven use of SimpleScalar.
 */

#ifndef ADCACHE_CPU_OOO_CORE_HH
#define ADCACHE_CPU_OOO_CORE_HH

#include <memory>
#include <vector>

#include "cpu/branch_predictor.hh"
#include "cpu/btb.hh"
#include "cpu/func_units.hh"
#include "cpu/store_buffer.hh"
#include "trace/source.hh"
#include "util/types.hh"

namespace adcache
{

/**
 * The core's window into the cache hierarchy. Implemented by
 * sim::System; keeps the CPU model independent of cache internals.
 */
class MemoryInterface
{
  public:
    virtual ~MemoryInterface() = default;

    /**
     * Instruction fetch from @p pc issued at @p now.
     * @return cycle the fetched line can feed decode (== now on an
     *         L1I hit whose pipelined latency is hidden).
     */
    virtual Cycle fetch(Addr pc, Cycle now) = 0;

    /** Data load issued at @p now; returns data-ready cycle. */
    virtual Cycle load(Addr addr, Cycle now) = 0;

    /** Data store issued at @p now; returns write-complete cycle. */
    virtual Cycle store(Addr addr, Cycle now) = 0;
};

/** Core configuration (defaults = Table 1). */
struct CoreConfig
{
    unsigned fetchWidth = 8;
    unsigned dispatchWidth = 8;
    unsigned retireWidth = 8;
    unsigned robSize = 64;
    unsigned rsSize = 32;
    unsigned storeBufferEntries = 4;
    /** Fetch-redirect + pipeline-refill cost of a mispredict. */
    Cycle mispredictPenalty = 10;
    /** Bubble for a taken branch whose target missed in the BTB. */
    Cycle btbMissPenalty = 2;
    FuncUnitConfig funcUnits;
    BranchPredictorConfig branchPredictor;
    BtbConfig btb;
};

/** Execution statistics of one run. */
struct CoreStats
{
    InstCount instructions = 0;
    Cycle cycles = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t btbMisses = 0;
    StoreBufferStats storeBuffer;
    BranchPredictorStats predictor;

    double
    cpi() const
    {
        return instructions == 0
                   ? 0.0
                   : double(cycles) / double(instructions);
    }

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : double(instructions) / double(cycles);
    }

    /**
     * Register every counter (including the store-buffer and
     * predictor sub-stats) under "<prefix><name>".
     */
    void registerInto(StatRegistry &reg,
                      const std::string &prefix) const;
};

/** The out-of-order core. */
class OooCore
{
  public:
    explicit OooCore(const CoreConfig &config = {});

    /**
     * Run @p source to exhaustion (or @p max_instrs) against @p mem.
     * @return the run's statistics.
     */
    CoreStats run(TraceSource &source, MemoryInterface &mem,
                  InstCount max_instrs);

    const CoreConfig &config() const { return config_; }

  private:
    CoreConfig config_;
};

} // namespace adcache

#endif // ADCACHE_CPU_OOO_CORE_HH
