#include "cpu/func_units.hh"

#include "util/logging.hh"

namespace adcache
{

FuncUnits::FuncUnits(const FuncUnitConfig &config)
    : config_(config), intAlu_(config.intAluCount, 0),
      intMult_(config.intMultCount, 0), fpAdd_(config.fpAddCount, 0),
      fpDiv_(config.fpDivCount, 0), memPort_(config.memPortCount, 0)
{
    adcache_assert(config.intAluCount >= 1);
    adcache_assert(config.memPortCount >= 1);
}

std::vector<Cycle> &
FuncUnits::poolFor(InstrClass cls)
{
    switch (cls) {
      case InstrClass::IntMult:
        return intMult_;
      case InstrClass::FpAdd:
        return fpAdd_;
      case InstrClass::FpDiv:
        return fpDiv_;
      case InstrClass::Load:
      case InstrClass::Store:
        return memPort_;
      default:
        return intAlu_;  // IntAlu and Branch share the ALUs
    }
}

Cycle
FuncUnits::latency(InstrClass cls) const
{
    switch (cls) {
      case InstrClass::IntMult:
        return config_.intMultLatency;
      case InstrClass::FpAdd:
        return config_.fpAddLatency;
      case InstrClass::FpDiv:
        return config_.fpDivLatency;
      case InstrClass::Load:
      case InstrClass::Store:
        return 1;  // port slot; hierarchy latency added by caller
      default:
        return config_.intAluLatency;
    }
}

Cycle
FuncUnits::issue(InstrClass cls, Cycle ready)
{
    auto &pool = poolFor(cls);
    // Pick the unit that frees up first.
    std::size_t best = 0;
    for (std::size_t u = 1; u < pool.size(); ++u)
        if (pool[u] < pool[best])
            best = u;
    const Cycle start = ready > pool[best] ? ready : pool[best];
    // Pipelined: the unit accepts another op next cycle.
    pool[best] = start + 1;
    return start;
}

} // namespace adcache
