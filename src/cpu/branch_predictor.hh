/**
 * @file
 * The hybrid branch predictor of Table 1: 16 KB gshare + 16 KB
 * bimodal + 16 KB meta chooser. 16 KB of 2-bit counters = 64 K
 * entries per table.
 */

#ifndef ADCACHE_CPU_BRANCH_PREDICTOR_HH
#define ADCACHE_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/sat_counter.hh"
#include "util/types.hh"

namespace adcache
{

class StatRegistry;

/** Predictor sizing. */
struct BranchPredictorConfig
{
    unsigned tableEntries = 64 * 1024;  //!< per component (16KB @2b)
    unsigned historyBits = 16;          //!< gshare global history
};

/** Accuracy counters. */
struct BranchPredictorStats
{
    std::uint64_t lookups = 0;
    std::uint64_t mispredicts = 0;

    double
    accuracy() const
    {
        return lookups == 0
                   ? 1.0
                   : 1.0 - double(mispredicts) / double(lookups);
    }

    /** Register every counter under "<prefix><name>". */
    void registerInto(StatRegistry &reg,
                      const std::string &prefix) const;
};

/** gshare/bimodal/meta hybrid direction predictor. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredictorConfig &config = {});

    /** Predict the direction of the branch at @p pc. */
    bool predict(Addr pc) const;

    /**
     * Train with the resolved outcome and update global history.
     * @return true iff the pre-update prediction was wrong.
     */
    bool update(Addr pc, bool taken);

    const BranchPredictorStats &stats() const { return stats_; }

  private:
    unsigned bimodalIndex(Addr pc) const;
    unsigned gshareIndex(Addr pc) const;

    BranchPredictorConfig config_;
    std::vector<SatCounter> bimodal_;
    std::vector<SatCounter> gshare_;
    std::vector<SatCounter> meta_;  //!< high = trust gshare
    std::uint64_t history_ = 0;
    mutable BranchPredictorStats stats_;
};

} // namespace adcache

#endif // ADCACHE_CPU_BRANCH_PREDICTOR_HH
