/**
 * @file
 * Branch target buffer: 4K-entry, 4-way set associative (Table 1).
 * A taken branch whose target misses in the BTB costs a fetch bubble
 * even when its direction was predicted correctly.
 */

#ifndef ADCACHE_CPU_BTB_HH
#define ADCACHE_CPU_BTB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "util/types.hh"

namespace adcache
{

/** BTB sizing. */
struct BtbConfig
{
    unsigned entries = 4096;
    unsigned assoc = 4;
};

/** BTB hit/miss counters. */
struct BtbStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
};

/** Set-associative branch target buffer with LRU replacement. */
class Btb
{
  public:
    explicit Btb(const BtbConfig &config = {});

    /** Predicted target of the branch at @p pc, if cached. */
    std::optional<Addr> lookup(Addr pc);

    /** Install/refresh the target of a taken branch. */
    void update(Addr pc, Addr target);

    const BtbStats &stats() const { return stats_; }

  private:
    struct Entry
    {
        Addr tag = 0;
        Addr target = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    unsigned setIndex(Addr pc) const;
    Addr tagOf(Addr pc) const;

    BtbConfig config_;
    unsigned numSets_;
    std::vector<Entry> entries_;
    std::uint64_t clock_ = 0;
    BtbStats stats_;
};

} // namespace adcache

#endif // ADCACHE_CPU_BTB_HH
