#include "cpu/ooo_core.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/stat_registry.hh"

namespace adcache
{

namespace
{

/**
 * Tracks "at most W events per cycle": given a candidate time,
 * returns the first cycle >= candidate with a free slot.
 */
class WidthLimiter
{
  public:
    explicit WidthLimiter(unsigned width) : width_(width)
    {
        adcache_assert(width >= 1);
    }

    Cycle
    schedule(Cycle candidate)
    {
        if (candidate > cycle_) {
            cycle_ = candidate;
            used_ = 1;
            return cycle_;
        }
        // candidate <= cycle_: the stream is contiguous; pack into
        // the current cycle if a slot remains, else start the next.
        if (used_ < width_) {
            ++used_;
            return cycle_;
        }
        ++cycle_;
        used_ = 1;
        return cycle_;
    }

  private:
    unsigned width_;
    Cycle cycle_ = 0;
    unsigned used_ = 0;
};

} // namespace

OooCore::OooCore(const CoreConfig &config) : config_(config) {}

CoreStats
OooCore::run(TraceSource &source, MemoryInterface &mem,
             InstCount max_instrs)
{
    CoreStats stats;
    BranchPredictor predictor(config_.branchPredictor);
    Btb btb(config_.btb);
    FuncUnits fus(config_.funcUnits);
    StoreBuffer store_buffer(config_.storeBufferEntries);

    // Cycle at which each architectural register's value is ready.
    std::vector<Cycle> reg_ready(numArchRegs, 0);

    // Ring buffers over the last robSize retire times and rsSize
    // issue times: entry (i - robSize) bounds instruction i's
    // dispatch (a ROB slot frees when that instruction retires).
    std::vector<Cycle> retire_ring(config_.robSize, 0);
    std::vector<Cycle> issue_ring(config_.rsSize, 0);

    WidthLimiter fetch_limit(config_.fetchWidth);
    WidthLimiter dispatch_limit(config_.dispatchWidth);
    WidthLimiter retire_limit(config_.retireWidth);

    Cycle fetch_ready = 0;       // earliest fetch time of next instr
    Cycle prev_retire = 0;       // in-order retirement frontier
    Addr last_fetch_line = ~Addr(0);
    constexpr unsigned fetch_line_shift = 6;  // 64B fetch granularity

    TraceInstr instr;
    InstCount n = 0;
    while (n < max_instrs && source.next(instr)) {
        const InstCount i = n++;

        // ---------------- Fetch ----------------
        const Addr line = instr.pc >> fetch_line_shift;
        if (line != last_fetch_line) {
            fetch_ready = mem.fetch(instr.pc, fetch_ready);
            last_fetch_line = line;
        }
        const Cycle fetched =
            std::max(fetch_ready, fetch_limit.schedule(fetch_ready));

        // ---------------- Dispatch ----------------
        Cycle dispatch_lb = fetched;
        if (i >= config_.robSize)
            dispatch_lb = std::max(
                dispatch_lb, retire_ring[i % config_.robSize]);
        if (i >= config_.rsSize)
            dispatch_lb =
                std::max(dispatch_lb, issue_ring[i % config_.rsSize]);
        const Cycle dispatched = dispatch_limit.schedule(dispatch_lb);

        // ---------------- Issue ----------------
        Cycle ready = dispatched + 1;
        if (instr.src1 != noReg)
            ready = std::max(ready, reg_ready[instr.src1]);
        if (instr.src2 != noReg)
            ready = std::max(ready, reg_ready[instr.src2]);
        const Cycle issued = fus.issue(instr.cls, ready);
        issue_ring[i % config_.rsSize] = issued;

        // ---------------- Execute / complete ----------------
        Cycle complete;
        switch (instr.cls) {
          case InstrClass::Load:
            ++stats.loads;
            complete = mem.load(instr.memAddr, issued);
            break;
          case InstrClass::Store:
            ++stats.stores;
            complete = issued + 1;  // address generation only
            break;
          default:
            complete = issued + fus.latency(instr.cls);
            break;
        }
        if (instr.dst != noReg)
            reg_ready[instr.dst] = complete;

        // ---------------- Control flow ----------------
        if (instr.isBranch()) {
            ++stats.branches;
            const bool mispredict = predictor.update(instr.pc,
                                                     instr.taken);
            bool btb_miss = false;
            if (instr.taken) {
                btb_miss = !btb.lookup(instr.pc).has_value();
                btb.update(instr.pc, instr.target);
                if (btb_miss)
                    ++stats.btbMisses;
            }
            if (mispredict) {
                ++stats.mispredicts;
                // The fetch stream restarts after resolution.
                fetch_ready = std::max(
                    fetch_ready,
                    complete + config_.mispredictPenalty);
                last_fetch_line = ~Addr(0);
            } else if (btb_miss) {
                fetch_ready =
                    std::max(fetch_ready,
                             fetched + config_.btbMissPenalty);
                last_fetch_line = ~Addr(0);
            }
        }

        // ---------------- Retire ----------------
        Cycle retire_lb = std::max(complete, prev_retire);
        if (instr.isStore()) {
            // Claim a store-buffer entry; stall retirement if full.
            const Cycle slot = store_buffer.earliestSlot(retire_lb);
            if (slot > retire_lb) {
                ++store_buffer.stats().fullStalls;
                store_buffer.stats().stallCycles += slot - retire_lb;
            }
            retire_lb = slot;
        }
        const Cycle retired = retire_limit.schedule(retire_lb);
        if (instr.isStore()) {
            const Cycle drain_done = mem.store(instr.memAddr, retired);
            store_buffer.push(retired, drain_done);
        }
        prev_retire = std::max(prev_retire, retired);
        retire_ring[i % config_.robSize] = retired;
    }

    stats.instructions = n;
    stats.cycles = prev_retire + 1;
    stats.storeBuffer = store_buffer.stats();
    stats.predictor = predictor.stats();
    return stats;
}

void
CoreStats::registerInto(StatRegistry &reg,
                        const std::string &prefix) const
{
    reg.counter(prefix + "instructions", instructions);
    reg.counter(prefix + "cycles", cycles);
    reg.counter(prefix + "loads", loads);
    reg.counter(prefix + "stores", stores);
    reg.counter(prefix + "branches", branches);
    reg.counter(prefix + "mispredicts", mispredicts);
    reg.counter(prefix + "btb_misses", btbMisses);
    reg.value(prefix + "cpi", cpi());
    reg.value(prefix + "ipc", ipc());
    storeBuffer.registerInto(reg, prefix + "store_buffer.");
    predictor.registerInto(reg, prefix + "predictor.");
}

} // namespace adcache
