#include "cpu/btb.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace adcache
{

Btb::Btb(const BtbConfig &config)
    : config_(config), numSets_(config.entries / config.assoc),
      entries_(config.entries)
{
    adcache_assert(config.assoc >= 1);
    adcache_assert(config.entries % config.assoc == 0);
    adcache_assert(isPowerOfTwo(numSets_));
}

unsigned
Btb::setIndex(Addr pc) const
{
    return unsigned((pc >> 2) & (numSets_ - 1));
}

Addr
Btb::tagOf(Addr pc) const
{
    return (pc >> 2) / numSets_;
}

std::optional<Addr>
Btb::lookup(Addr pc)
{
    ++stats_.lookups;
    const unsigned set = setIndex(pc);
    const Addr tag = tagOf(pc);
    for (unsigned w = 0; w < config_.assoc; ++w) {
        auto &e = entries_[std::size_t(set) * config_.assoc + w];
        if (e.valid && e.tag == tag) {
            ++stats_.hits;
            e.lastUse = ++clock_;
            return e.target;
        }
    }
    return std::nullopt;
}

void
Btb::update(Addr pc, Addr target)
{
    const unsigned set = setIndex(pc);
    const Addr tag = tagOf(pc);
    Entry *victim = nullptr;
    for (unsigned w = 0; w < config_.assoc; ++w) {
        auto &e = entries_[std::size_t(set) * config_.assoc + w];
        if (e.valid && e.tag == tag) {
            e.target = target;
            e.lastUse = ++clock_;
            return;
        }
    }
    // Miss: fill an invalid way, else the least recently used one.
    for (unsigned w = 0; w < config_.assoc; ++w) {
        auto &e = entries_[std::size_t(set) * config_.assoc + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (!victim || e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->tag = tag;
    victim->target = target;
    victim->valid = true;
    victim->lastUse = ++clock_;
}

} // namespace adcache
