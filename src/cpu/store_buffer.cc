#include "cpu/store_buffer.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/stat_registry.hh"

namespace adcache
{

StoreBuffer::StoreBuffer(unsigned entries) : drainDone_(entries, 0)
{
    adcache_assert(entries >= 1);
}

Cycle
StoreBuffer::earliestSlot(Cycle retire_ready) const
{
    const Cycle first_free =
        *std::min_element(drainDone_.begin(), drainDone_.end());
    return std::max(retire_ready, first_free);
}

void
StoreBuffer::push(Cycle retire, Cycle drain_done)
{
    auto slot = std::min_element(drainDone_.begin(), drainDone_.end());
    ++stats_.stores;
    if (*slot > retire)
        panic("store buffer entry claimed before it is free");
    *slot = drain_done;
}

void
StoreBufferStats::registerInto(StatRegistry &reg,
                               const std::string &prefix) const
{
    reg.counter(prefix + "stores", stores);
    reg.counter(prefix + "full_stalls", fullStalls);
    reg.counter(prefix + "stall_cycles", stallCycles);
}

} // namespace adcache
