#include "cpu/branch_predictor.hh"

#include "util/bits.hh"
#include "util/logging.hh"
#include "util/stat_registry.hh"

namespace adcache
{

BranchPredictor::BranchPredictor(const BranchPredictorConfig &config)
    : config_(config),
      bimodal_(config.tableEntries, SatCounter(2, 1)),
      gshare_(config.tableEntries, SatCounter(2, 1)),
      meta_(config.tableEntries, SatCounter(2, 2))
{
    adcache_assert(isPowerOfTwo(config.tableEntries));
    adcache_assert(config.historyBits <= 32);
}

unsigned
BranchPredictor::bimodalIndex(Addr pc) const
{
    return unsigned((pc >> 2) & (config_.tableEntries - 1));
}

unsigned
BranchPredictor::gshareIndex(Addr pc) const
{
    const Addr h = history_ & lowMask(config_.historyBits);
    return unsigned(((pc >> 2) ^ h) & (config_.tableEntries - 1));
}

bool
BranchPredictor::predict(Addr pc) const
{
    const bool bimodal_pred = bimodal_[bimodalIndex(pc)].high();
    const bool gshare_pred = gshare_[gshareIndex(pc)].high();
    const bool use_gshare = meta_[bimodalIndex(pc)].high();
    return use_gshare ? gshare_pred : bimodal_pred;
}

bool
BranchPredictor::update(Addr pc, bool taken)
{
    ++stats_.lookups;
    const unsigned bi = bimodalIndex(pc);
    const unsigned gi = gshareIndex(pc);

    const bool bimodal_pred = bimodal_[bi].high();
    const bool gshare_pred = gshare_[gi].high();
    const bool use_gshare = meta_[bi].high();
    const bool pred = use_gshare ? gshare_pred : bimodal_pred;
    const bool mispredict = pred != taken;
    if (mispredict)
        ++stats_.mispredicts;

    // Train the chooser only when the components disagree.
    if (bimodal_pred != gshare_pred) {
        if (gshare_pred == taken)
            meta_[bi].increment();
        else
            meta_[bi].decrement();
    }

    if (taken) {
        bimodal_[bi].increment();
        gshare_[gi].increment();
    } else {
        bimodal_[bi].decrement();
        gshare_[gi].decrement();
    }

    history_ = (history_ << 1) | (taken ? 1 : 0);
    return mispredict;
}

void
BranchPredictorStats::registerInto(StatRegistry &reg,
                                   const std::string &prefix) const
{
    reg.counter(prefix + "lookups", lookups);
    reg.counter(prefix + "mispredicts", mispredicts);
    reg.value(prefix + "accuracy", accuracy());
}

} // namespace adcache
