/**
 * @file
 * The finite store buffer (Table 1: 4 entries). Retired stores park
 * here while their write drains through the cache hierarchy; when
 * every entry is occupied, retirement stalls — the effect Sec. 4.5.2
 * (Fig. 10) isolates. The original MASE effectively assumed an
 * unbounded buffer, which the authors fixed; this model is finite by
 * construction.
 */

#ifndef ADCACHE_CPU_STORE_BUFFER_HH
#define ADCACHE_CPU_STORE_BUFFER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hh"

namespace adcache
{

class StatRegistry;

/** Store buffer occupancy statistics. */
struct StoreBufferStats
{
    std::uint64_t stores = 0;
    std::uint64_t fullStalls = 0;  //!< stores that found it full
    Cycle stallCycles = 0;         //!< retirement cycles lost

    /** Register every counter under "<prefix><name>". */
    void registerInto(StatRegistry &reg,
                      const std::string &prefix) const;
};

/**
 * A set of entries each busy until its drain completes. The buffer is
 * modelled by completion times: a new store needs one entry whose
 * drain time is <= the store's retire time, or retirement waits.
 */
class StoreBuffer
{
  public:
    explicit StoreBuffer(unsigned entries);

    /**
     * Earliest cycle (>= @p retire_ready) at which a new store can
     * claim an entry.
     */
    Cycle earliestSlot(Cycle retire_ready) const;

    /**
     * Commit a store: claims the entry that frees first.
     * @param retire     cycle the store retires (entry claimed).
     * @param drain_done cycle its cache write completes (entry free).
     */
    void push(Cycle retire, Cycle drain_done);

    unsigned capacity() const { return unsigned(drainDone_.size()); }

    StoreBufferStats &stats() { return stats_; }
    const StoreBufferStats &stats() const { return stats_; }

  private:
    std::vector<Cycle> drainDone_;
    StoreBufferStats stats_;
};

} // namespace adcache

#endif // ADCACHE_CPU_STORE_BUFFER_HH
