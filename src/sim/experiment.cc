#include "sim/experiment.hh"

#include <cstdio>
#include <cstdlib>

#include "sim/runner.hh"
#include "util/logging.hh"

namespace adcache
{

InstCount
parseInstrBudget(const char *text, InstCount fallback)
{
    if (!text)
        return fallback;
    // strtoull silently wraps negative input to a huge positive
    // value, so accept plain digit strings only.
    if (*text < '0' || *text > '9') {
        warn("ignoring malformed ADCACHE_INSTRS='%s'", text);
        return fallback;
    }
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end && *end == '\0' && v > 0)
        return InstCount(v);
    warn("ignoring malformed ADCACHE_INSTRS='%s'", text);
    return fallback;
}

InstCount
instrBudget()
{
    static const InstCount budget =
        parseInstrBudget(std::getenv("ADCACHE_INSTRS"), 3'000'000);
    return budget;
}

SimResult
runTimed(const SystemConfig &config, const BenchmarkDef &def,
         InstCount instrs)
{
    RunJob job{&def, config, instrs, /*timed=*/true, def.spec.seed};
    return executeJob(job);
}

SimResult
runFunctional(const SystemConfig &config, const BenchmarkDef &def,
              InstCount instrs)
{
    RunJob job{&def, config, instrs, /*timed=*/false, def.spec.seed};
    return executeJob(job);
}

namespace
{

/** Reshape a flat index-ordered grid back into per-benchmark rows. */
std::vector<SuiteRow>
gridToRows(const std::vector<const BenchmarkDef *> &benchmarks,
           std::size_t num_variants, std::vector<SimResult> grid)
{
    std::vector<SuiteRow> rows;
    rows.reserve(benchmarks.size());
    std::size_t i = 0;
    for (const BenchmarkDef *def : benchmarks) {
        SuiteRow row;
        row.benchmark = def->name;
        row.results.reserve(num_variants);
        for (std::size_t v = 0; v < num_variants; ++v)
            row.results.push_back(std::move(grid[i++]));
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace

std::vector<SuiteRow>
runConfigSuite(const std::vector<const BenchmarkDef *> &benchmarks,
               const std::vector<ConfigVariant> &variants,
               InstCount instrs, bool timed)
{
    std::vector<RunJob> jobs;
    jobs.reserve(benchmarks.size() * variants.size());
    for (const BenchmarkDef *def : benchmarks) {
        for (const ConfigVariant &variant : variants) {
            // The seed is fixed here, while the grid is built: every
            // variant of a benchmark replays the same stream, and a
            // job's stream never depends on execution order.
            jobs.push_back(RunJob{def, variant.config, instrs, timed,
                                  def->spec.seed});
        }
    }
    return gridToRows(benchmarks, variants.size(), runGrid(jobs));
}

std::vector<SuiteRow>
runSuite(const std::vector<const BenchmarkDef *> &benchmarks,
         const std::vector<L2Spec> &variants, InstCount instrs,
         bool timed, const SystemConfig &base)
{
    std::vector<ConfigVariant> configs;
    configs.reserve(variants.size());
    for (const L2Spec &variant : variants) {
        ConfigVariant cv;
        cv.label = variant.label();
        cv.config = base;
        cv.config.l2 = variant;
        configs.push_back(std::move(cv));
    }
    return runConfigSuite(benchmarks, configs, instrs, timed);
}

std::vector<double>
averageOf(const std::vector<SuiteRow> &rows,
          double (*metric)(const SimResult &))
{
    std::vector<double> avg;
    if (rows.empty())
        return avg;
    avg.assign(rows.front().results.size(), 0.0);
    for (const auto &row : rows) {
        adcache_assert(row.results.size() == avg.size());
        for (std::size_t v = 0; v < avg.size(); ++v)
            avg[v] += metric(row.results[v]);
    }
    for (auto &a : avg)
        a /= double(rows.size());
    return avg;
}

double
metricCpi(const SimResult &r)
{
    return r.cpi;
}

double
metricL2Mpki(const SimResult &r)
{
    return r.l2Mpki;
}

double
metricL1iMpki(const SimResult &r)
{
    return r.l1iMpki;
}

double
metricL1dMpki(const SimResult &r)
{
    return r.l1dMpki;
}

double
metricL2DemandMpki(const SimResult &r)
{
    return r.l2DemandMpki;
}

void
printConfigBanner(const SystemConfig &config,
                  const std::string &experiment, InstCount budget)
{
    std::printf("=== %s ===\n", experiment.c_str());
    std::printf("%s", config.describe().c_str());
    std::printf("instruction budget per run: %llu (ADCACHE_INSTRS), "
                "%u worker(s) (ADCACHE_JOBS)\n\n",
                static_cast<unsigned long long>(budget),
                runnerJobs());
}

} // namespace adcache
