#include "sim/experiment.hh"

#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace adcache
{

InstCount
instrBudget()
{
    if (const char *env = std::getenv("ADCACHE_INSTRS")) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (end && *end == '\0' && v > 0)
            return InstCount(v);
        warn("ignoring malformed ADCACHE_INSTRS='%s'", env);
    }
    return 3'000'000;
}

SimResult
runTimed(const SystemConfig &config, const BenchmarkDef &def,
         InstCount instrs)
{
    System system(config);
    auto source = makeBenchmark(def);
    SimResult res = system.runTimed(*source, instrs);
    res.benchmark = def.name;
    return res;
}

SimResult
runFunctional(const SystemConfig &config, const BenchmarkDef &def,
              InstCount instrs)
{
    System system(config);
    auto source = makeBenchmark(def);
    SimResult res = system.runFunctional(*source, instrs);
    res.benchmark = def.name;
    return res;
}

std::vector<SuiteRow>
runSuite(const std::vector<const BenchmarkDef *> &benchmarks,
         const std::vector<L2Spec> &variants, InstCount instrs,
         bool timed, const SystemConfig &base)
{
    std::vector<SuiteRow> rows;
    rows.reserve(benchmarks.size());
    for (const BenchmarkDef *def : benchmarks) {
        SuiteRow row;
        row.benchmark = def->name;
        for (const L2Spec &variant : variants) {
            SystemConfig config = base;
            config.l2 = variant;
            row.results.push_back(
                timed ? runTimed(config, *def, instrs)
                      : runFunctional(config, *def, instrs));
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

std::vector<double>
averageOf(const std::vector<SuiteRow> &rows,
          double (*metric)(const SimResult &))
{
    std::vector<double> avg;
    if (rows.empty())
        return avg;
    avg.assign(rows.front().results.size(), 0.0);
    for (const auto &row : rows) {
        adcache_assert(row.results.size() == avg.size());
        for (std::size_t v = 0; v < avg.size(); ++v)
            avg[v] += metric(row.results[v]);
    }
    for (auto &a : avg)
        a /= double(rows.size());
    return avg;
}

double
metricCpi(const SimResult &r)
{
    return r.cpi;
}

double
metricL2Mpki(const SimResult &r)
{
    return r.l2Mpki;
}

double
metricL1iMpki(const SimResult &r)
{
    return r.l1iMpki;
}

double
metricL1dMpki(const SimResult &r)
{
    return r.l1dMpki;
}

void
printConfigBanner(const SystemConfig &config,
                  const std::string &experiment)
{
    std::printf("=== %s ===\n", experiment.c_str());
    std::printf("%s", config.describe().c_str());
    std::printf("instruction budget per run: %llu (ADCACHE_INSTRS)\n\n",
                static_cast<unsigned long long>(instrBudget()));
}

} // namespace adcache
