/**
 * @file
 * The simulated system: out-of-order core + L1I/L1D + unified L2 +
 * bus/memory, wired per Table 1. Implements the core's
 * MemoryInterface so the CPU model stays independent of cache
 * internals.
 */

#ifndef ADCACHE_SIM_SYSTEM_HH
#define ADCACHE_SIM_SYSTEM_HH

#include <memory>
#include <string>

#include "sim/config.hh"
#include "trace/source.hh"
#include "util/stat_registry.hh"

namespace adcache
{

/** Everything a run produces. */
struct SimResult
{
    std::string benchmark;
    std::string l2Label;
    CoreStats core;
    CacheStats l1i;
    CacheStats l1d;
    CacheStats l2;
    MemoryStats memory;

    double cpi = 0.0;
    double l2Mpki = 0.0;
    double l1iMpki = 0.0;
    double l1dMpki = 0.0;

    // Demand-only L2 accounting (differs from the raw cache stats
    // only when a prefetcher injects extra L2 traffic).
    std::uint64_t l2DemandAccesses = 0;
    std::uint64_t l2DemandMisses = 0;
    double l2DemandMpki = 0.0;
    std::uint64_t prefetchesIssued = 0;

    /**
     * Every statistic of the run, enumerable by name: per-component
     * counters registered by the live models (core.*, l1i.*, l1d.*,
     * l2.*, mem.*) plus the derived top-level metrics above. This is
     * what the report emitters consume, so a new component counter
     * shows up in JSON/CSV output without touching any plumbing.
     */
    StatRegistry stats;
};

/** One simulated machine instance (single-use per run). */
class System : public MemoryInterface
{
  public:
    explicit System(const SystemConfig &config);

    /**
     * Full timing simulation: CPI and miss rates.
     * @param source   instruction stream (consumed, not reset).
     * @param max_instrs dynamic instruction budget.
     */
    SimResult runTimed(TraceSource &source, InstCount max_instrs);

    /**
     * Functional-only simulation: drives the caches with the same
     * program-order reference stream but skips the core timing model.
     * CPI fields are zero. Several times faster; used by miss-rate
     * experiments and tests.
     */
    SimResult runFunctional(TraceSource &source, InstCount max_instrs);

    // MemoryInterface ------------------------------------------------
    Cycle fetch(Addr pc, Cycle now) override;
    Cycle load(Addr addr, Cycle now) override;
    Cycle store(Addr addr, Cycle now) override;

    /** The L2 model (for instrumentation, e.g. Fig. 7 sampling). */
    CacheModel &l2() { return *l2_; }

    const SystemConfig &config() const { return config_; }

  private:
    Cycle accessL2(Addr addr, bool is_write, Cycle now,
                   bool demand = true);
    void runPrefetcher(Addr addr, bool missed, Cycle now);
    std::unique_ptr<CacheModel> makeL1(const CacheConfig &conf,
                                       bool adaptive) const;
    SimResult gatherResult(const CoreStats &core_stats) const;

    SystemConfig config_;
    std::unique_ptr<CacheModel> l1i_;
    std::unique_ptr<CacheModel> l1d_;
    std::unique_ptr<CacheModel> l2_;
    MainMemory memory_;
    OooCore core_;
    std::unique_ptr<Prefetcher> prefetcher_;
    std::vector<Addr> prefetchScratch_;
    std::uint64_t l2DemandAccesses_ = 0;
    std::uint64_t l2DemandMisses_ = 0;
    std::uint64_t prefetchesIssued_ = 0;
};

} // namespace adcache

#endif // ADCACHE_SIM_SYSTEM_HH
