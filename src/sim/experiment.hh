/**
 * @file
 * Experiment-running helpers shared by the bench harness: run suites
 * of benchmarks under L2 variants (or arbitrary whole-system
 * configuration variants), average linear metrics the way the paper
 * does (arithmetic mean of CPI/MPKI, footnote 7), and format rows.
 *
 * Grid execution is delegated to sim/runner.hh, so every suite runs
 * its (benchmark x variant) cells concurrently under ADCACHE_JOBS
 * while producing results bit-identical to a serial run.
 */

#ifndef ADCACHE_SIM_EXPERIMENT_HH
#define ADCACHE_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "sim/system.hh"
#include "workloads/suite.hh"

namespace adcache
{

/**
 * Per-run instruction budget: env ADCACHE_INSTRS, default 3,000,000
 * (the paper simulates 100 M-instruction SimPoint samples; the
 * synthetic workloads are stationary within phases, so shapes are
 * stable at far smaller budgets). The environment is parsed exactly
 * once; later changes to ADCACHE_INSTRS do not affect the value.
 */
InstCount instrBudget();

/** Parse an ADCACHE_INSTRS-style budget; @p fallback if malformed. */
InstCount parseInstrBudget(const char *text, InstCount fallback);

/** Run one benchmark on one configuration (timing simulation). */
SimResult runTimed(const SystemConfig &config, const BenchmarkDef &def,
                   InstCount instrs);

/** Run one benchmark on one configuration, miss rates only. */
SimResult runFunctional(const SystemConfig &config,
                        const BenchmarkDef &def, InstCount instrs);

/** Results of one benchmark across several L2 variants. */
struct SuiteRow
{
    std::string benchmark;
    std::vector<SimResult> results;  //!< one per variant, same order
};

/** A whole-system configuration variant of a suite grid. */
struct ConfigVariant
{
    std::string label;
    SystemConfig config;
};

/**
 * Run @p benchmarks against @p variants (executed in parallel under
 * ADCACHE_JOBS; see sim/runner.hh).
 * @param timed false runs the fast functional model (MPKI only).
 */
std::vector<SuiteRow>
runSuite(const std::vector<const BenchmarkDef *> &benchmarks,
         const std::vector<L2Spec> &variants, InstCount instrs,
         bool timed, const SystemConfig &base = SystemConfig{});

/**
 * Generalised suite: variants that may differ in any part of the
 * system configuration (store-buffer size, prefetcher, adaptive L1s),
 * not just the L2 organisation.
 */
std::vector<SuiteRow>
runConfigSuite(const std::vector<const BenchmarkDef *> &benchmarks,
               const std::vector<ConfigVariant> &variants,
               InstCount instrs, bool timed);

/** Arithmetic mean of a metric across rows, per variant. */
std::vector<double>
averageOf(const std::vector<SuiteRow> &rows,
          double (*metric)(const SimResult &));

/** Metric extractors for averageOf. */
double metricCpi(const SimResult &r);
double metricL2Mpki(const SimResult &r);
double metricL1iMpki(const SimResult &r);
double metricL1dMpki(const SimResult &r);
double metricL2DemandMpki(const SimResult &r);

/**
 * Table 1 banner printed at the top of each bench binary.
 * @param budget the instruction budget the experiment actually uses.
 */
void printConfigBanner(const SystemConfig &config,
                       const std::string &experiment,
                       InstCount budget);

} // namespace adcache

#endif // ADCACHE_SIM_EXPERIMENT_HH
