/**
 * @file
 * Experiment-running helpers shared by the bench harness: run suites
 * of benchmarks under L2 variants, average linear metrics the way the
 * paper does (arithmetic mean of CPI/MPKI, footnote 7), and format
 * rows.
 */

#ifndef ADCACHE_SIM_EXPERIMENT_HH
#define ADCACHE_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "sim/system.hh"
#include "workloads/suite.hh"

namespace adcache
{

/**
 * Per-run instruction budget: env ADCACHE_INSTRS, default 3,000,000
 * (the paper simulates 100 M-instruction SimPoint samples; the
 * synthetic workloads are stationary within phases, so shapes are
 * stable at far smaller budgets).
 */
InstCount instrBudget();

/** Run one benchmark on one configuration (timing simulation). */
SimResult runTimed(const SystemConfig &config, const BenchmarkDef &def,
                   InstCount instrs);

/** Run one benchmark on one configuration, miss rates only. */
SimResult runFunctional(const SystemConfig &config,
                        const BenchmarkDef &def, InstCount instrs);

/** Results of one benchmark across several L2 variants. */
struct SuiteRow
{
    std::string benchmark;
    std::vector<SimResult> results;  //!< one per variant, same order
};

/**
 * Run @p benchmarks against @p variants.
 * @param timed false runs the fast functional model (MPKI only).
 */
std::vector<SuiteRow>
runSuite(const std::vector<const BenchmarkDef *> &benchmarks,
         const std::vector<L2Spec> &variants, InstCount instrs,
         bool timed, const SystemConfig &base = SystemConfig{});

/** Arithmetic mean of a metric across rows, per variant. */
std::vector<double>
averageOf(const std::vector<SuiteRow> &rows,
          double (*metric)(const SimResult &));

/** Metric extractors for averageOf. */
double metricCpi(const SimResult &r);
double metricL2Mpki(const SimResult &r);
double metricL1iMpki(const SimResult &r);
double metricL1dMpki(const SimResult &r);

/** Table 1 banner printed at the top of each bench binary. */
void printConfigBanner(const SystemConfig &config,
                       const std::string &experiment);

} // namespace adcache

#endif // ADCACHE_SIM_EXPERIMENT_HH
