#include "sim/runner.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/trace.hh"
#include "util/logging.hh"

namespace adcache
{

namespace
{
std::atomic<std::uint64_t> g_jobsCompleted{0};
}

std::uint64_t
jobsCompleted()
{
    return g_jobsCompleted.load(std::memory_order_relaxed);
}

unsigned
parseJobs(const char *text, unsigned fallback)
{
    if (!text)
        return fallback;
    char *end = nullptr;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (end && *end == '\0' && v > 0 && v <= 4096)
        return unsigned(v);
    warn("ignoring malformed ADCACHE_JOBS='%s'", text);
    return fallback;
}

unsigned
runnerJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned fallback = hw > 0 ? hw : 1;
    return parseJobs(std::getenv("ADCACHE_JOBS"), fallback);
}

unsigned
effectiveJobs(std::size_t grid_size, unsigned requested)
{
    if (grid_size <= 1 || requested <= 1)
        return 1;
    return unsigned(
        std::min<std::size_t>(grid_size, requested));
}

SimResult
executeJob(const RunJob &job)
{
    adcache_assert(job.benchmark != nullptr);
    // Capture the wall-clock span of the whole job for the Chrome
    // trace timeline. One gate check per job, not per access.
    const bool spanning = obs::traceEnabled();
    const std::uint64_t t0 = spanning ? obs::nowNs() : 0;
    System system(job.config);
    auto source = makeBenchmark(*job.benchmark, job.sourceSeed);
    SimResult res = job.timed
                        ? system.runTimed(*source, job.instrs)
                        : system.runFunctional(*source, job.instrs);
    res.benchmark = job.benchmark->name;
    if (spanning)
        obs::recordSpan({res.benchmark + "/" + res.l2Label,
                         obs::currentTid(), t0, obs::nowNs()});
    return res;
}

void
runIndexed(std::size_t n, unsigned workers,
           const std::function<void(std::size_t)> &body)
{
    const unsigned used = effectiveJobs(n, workers);
    if (used <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            body(i);
            g_jobsCompleted.fetch_add(1,
                                      std::memory_order_relaxed);
        }
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr error;
    std::mutex error_mutex;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
            }
            g_jobsCompleted.fetch_add(1,
                                      std::memory_order_relaxed);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(used);
    for (unsigned t = 0; t < used; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();

    if (error)
        std::rethrow_exception(error);
}

std::vector<SimResult>
runGrid(const std::vector<RunJob> &jobs, unsigned workers)
{
    std::vector<SimResult> results(jobs.size());
    runIndexed(jobs.size(), workers,
               [&](std::size_t i) { results[i] = executeJob(jobs[i]); });
    return results;
}

std::vector<SimResult>
runGrid(const std::vector<RunJob> &jobs)
{
    return runGrid(jobs, runnerJobs());
}

} // namespace adcache
