/**
 * @file
 * Multi-programmed shared-L2 simulation — the paper's first future
 * work item: "We plan on evaluating adaptive caching policies for
 * shared last-level caches in a multi-core environment. We believe
 * that the combination of memory traffic from dissimilar threads or
 * applications will provide even more opportunities for the adaptive
 * mechanism to help performance."
 *
 * The model runs N workloads round-robin, each through its own
 * private L1I/L1D pair, all sharing one L2. Address spaces are
 * disambiguated with a per-core high-bit offset, which leaves the
 * set index untouched — the workloads fight for exactly the same
 * sets, as co-scheduled programs do. The simulation is functional
 * (miss rates, not CPI): the single-core timing model does not
 * extend to cycle-interleaved multi-core execution.
 */

#ifndef ADCACHE_SIM_MULTICORE_HH
#define ADCACHE_SIM_MULTICORE_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "trace/source.hh"

namespace adcache
{

/** Configuration of a shared-L2 multi-programmed run. */
struct SharedL2Config
{
    /** Benchmark names (one per core). */
    std::vector<std::string> workloads;
    /** The shared L2 organisation. */
    L2Spec l2 = L2Spec::lru();
    /** Private L1 configuration (replicated per core). */
    CacheConfig l1i{16 * 1024, 4, 64, PolicyType::LRU, 1};
    CacheConfig l1d{16 * 1024, 4, 64, PolicyType::LRU, 1};
};

/** Per-core and aggregate results of a shared-L2 run. */
struct SharedL2Result
{
    std::string l2Label;
    InstCount totalInstructions = 0;
    CacheStats l2;
    double l2Mpki = 0.0;  //!< misses per 1000 total instructions

    struct PerCore
    {
        std::string workload;
        InstCount instructions = 0;
        std::uint64_t l2Accesses = 0;
        std::uint64_t l2Misses = 0;
        double l2Mpki = 0.0;  //!< per-core misses / per-core kilo-inst
    };
    std::vector<PerCore> cores;
};

/**
 * Run @p total_instrs dynamic instructions, round-robin across the
 * configured workloads, against the shared L2.
 */
SharedL2Result runSharedL2(const SharedL2Config &config,
                           InstCount total_instrs);

} // namespace adcache

#endif // ADCACHE_SIM_MULTICORE_HH
