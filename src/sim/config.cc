#include "sim/config.hh"

#include <sstream>

#include "util/logging.hh"

namespace adcache
{

std::unique_ptr<CacheModel>
L2Spec::make() const
{
    switch (kind) {
      case Kind::Conventional:
        return std::make_unique<Cache>(conventional);
      case Kind::Adaptive:
        return std::make_unique<AdaptiveCache>(adaptive);
      case Kind::Sbar:
        return std::make_unique<SbarCache>(sbar);
    }
    panic("unknown L2 kind");
}

std::string
L2Spec::label() const
{
    // Delegate to the model's own description.
    return make()->describe();
}

L2Spec
L2Spec::lru(std::uint64_t size, unsigned assoc, unsigned line)
{
    return policy(PolicyType::LRU, size, assoc, line);
}

L2Spec
L2Spec::policy(PolicyType type, std::uint64_t size, unsigned assoc,
               unsigned line)
{
    L2Spec spec;
    spec.kind = Kind::Conventional;
    spec.conventional.sizeBytes = size;
    spec.conventional.assoc = assoc;
    spec.conventional.lineSize = line;
    spec.conventional.policy = type;
    return spec;
}

L2Spec
L2Spec::adaptiveLruLfu(unsigned partial_tag_bits, std::uint64_t size,
                       unsigned assoc, unsigned line)
{
    return adaptiveDual(PolicyType::LRU, PolicyType::LFU,
                        partial_tag_bits, size, assoc, line);
}

L2Spec
L2Spec::adaptiveDual(PolicyType a, PolicyType b,
                     unsigned partial_tag_bits, std::uint64_t size,
                     unsigned assoc, unsigned line)
{
    L2Spec spec;
    spec.kind = Kind::Adaptive;
    spec.adaptive = AdaptiveConfig::dual(a, b, size, assoc, line);
    spec.adaptive.partialTagBits = partial_tag_bits;
    return spec;
}

L2Spec
L2Spec::fromAdaptive(const AdaptiveConfig &config)
{
    L2Spec spec;
    spec.kind = Kind::Adaptive;
    spec.adaptive = config;
    return spec;
}

L2Spec
L2Spec::fromSbar(const SbarConfig &config)
{
    L2Spec spec;
    spec.kind = Kind::Sbar;
    spec.sbar = config;
    return spec;
}

std::string
SystemConfig::describe() const
{
    std::ostringstream out;
    out << "Instruction cache : " << (l1i.sizeBytes / 1024) << "KB, "
        << l1i.lineSize << "B lines, " << l1i.assoc << "-way "
        << policyName(l1i.policy) << ", " << l1iHitLatency
        << " cycles" << (adaptiveL1i ? " (adaptive)" : "") << "\n";
    out << "Data cache        : " << (l1d.sizeBytes / 1024) << "KB, "
        << l1d.lineSize << "B lines, " << l1d.assoc << "-way "
        << policyName(l1d.policy) << ", " << l1dHitLatency
        << " cycles" << (adaptiveL1d ? " (adaptive)" : "") << "\n";
    out << "Unified L2 cache  : " << l2.label() << ", "
        << l2HitLatency << "-cycle hits, "
        << core.storeBufferEntries << "-entry store buffer\n";
    out << "Core              : " << core.fetchWidth << "-wide, "
        << core.rsSize << " RS, " << core.robSize
        << " ROB; 4 IALU(1) 4 IMUL(8) 4 FPADD(4) 4 FPDIV(16), "
        << "2 memory ports\n";
    out << "Branch predictor  : 16KB gshare / 16KB bimodal / 16KB "
        << "meta; 4K-entry 4-way BTB\n";
    out << "Memory            : " << memory.accessLatency
        << "-cycle latency; " << memory.bus.bytesPerBeat
        << "B-wide split-transaction bus, "
        << memory.bus.cpuCyclesPerBeat << ":1 frequency ratio\n";
    return out.str();
}

} // namespace adcache
