/**
 * @file
 * Parallel experiment runner. Every (benchmark x variant) cell of an
 * evaluation grid is an independent single-use System, so the grid is
 * embarrassingly parallel; this layer executes it on a fixed-size
 * std::thread pool while keeping the output bit-identical to a serial
 * run:
 *
 *  - results land in the result vector by job index, never by
 *    completion order;
 *  - each job carries its own RNG seed (derived from the job
 *    definition when the grid is built), so the generated instruction
 *    stream is a pure function of the job and scheduling cannot
 *    perturb it;
 *  - no simulator state is shared between jobs.
 *
 * The worker count comes from ADCACHE_JOBS (default: the hardware
 * concurrency); 1 selects the plain serial loop on the calling
 * thread.
 */

#ifndef ADCACHE_SIM_RUNNER_HH
#define ADCACHE_SIM_RUNNER_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/system.hh"
#include "workloads/suite.hh"

namespace adcache
{

/** One cell of an experiment grid: a single-use simulation. */
struct RunJob
{
    const BenchmarkDef *benchmark = nullptr;
    SystemConfig config;
    InstCount instrs = 0;
    bool timed = false;
    /** Seed for the workload generator; fixed at grid construction. */
    std::uint64_t sourceSeed = 0;
};

/**
 * Parse an ADCACHE_JOBS-style worker count. Returns @p fallback on
 * null/malformed/zero input.
 */
unsigned parseJobs(const char *text, unsigned fallback);

/**
 * Worker count for grid execution: ADCACHE_JOBS if set and valid,
 * otherwise the hardware concurrency (at least 1).
 */
unsigned runnerJobs();

/**
 * Workers actually used for @p grid_size jobs given @p requested:
 * never more than the grid size; 1 means the serial path.
 */
unsigned effectiveJobs(std::size_t grid_size, unsigned requested);

/** Execute one job to completion. */
SimResult executeJob(const RunJob &job);

/**
 * Jobs (runIndexed bodies, including every grid cell) completed
 * process-wide so far. Monotone; read by the bench progress
 * heartbeat (ADCACHE_PROGRESS) from its monitor thread.
 */
std::uint64_t jobsCompleted();

/**
 * Execute @p jobs on @p workers threads (default runnerJobs()).
 * Results are indexed exactly like @p jobs. With workers <= 1 the
 * jobs run serially on the calling thread.
 */
std::vector<SimResult> runGrid(const std::vector<RunJob> &jobs,
                               unsigned workers);
std::vector<SimResult> runGrid(const std::vector<RunJob> &jobs);

/**
 * Generic fan-out: invoke @p body(i) for i in [0, n) across the pool.
 * The body must write its result into caller-owned storage at index
 * i; bodies for distinct i must not share mutable state. Used by
 * experiment layers whose results are not SimResults (e.g. the
 * shared-L2 multicore sweeps).
 */
void runIndexed(std::size_t n, unsigned workers,
                const std::function<void(std::size_t)> &body);

} // namespace adcache

#endif // ADCACHE_SIM_RUNNER_HH
