#include "sim/system.hh"

#include "util/stats.hh"

namespace adcache
{

System::System(const SystemConfig &config)
    : config_(config),
      l1i_(makeL1(config.l1i, config.adaptiveL1i)),
      l1d_(makeL1(config.l1d, config.adaptiveL1d)),
      l2_(config.l2.make()), memory_(config.memory),
      core_(config.core),
      prefetcher_(makePrefetcher(config.l2Prefetcher,
                                 l2_->geometry().lineSize,
                                 config.prefetchDegree))
{
}

std::unique_ptr<CacheModel>
System::makeL1(const CacheConfig &conf, bool adaptive) const
{
    if (!adaptive)
        return std::make_unique<Cache>(conf);
    AdaptiveConfig a = AdaptiveConfig::dual(
        PolicyType::LRU, PolicyType::LFU, conf.sizeBytes, conf.assoc,
        conf.lineSize);
    return std::make_unique<AdaptiveCache>(a);
}

Cycle
System::accessL2(Addr addr, bool is_write, Cycle now, bool demand)
{
    const auto r = l2_->access(addr, is_write);
    if (demand) {
        ++l2DemandAccesses_;
        if (!r.hit)
            ++l2DemandMisses_;
        // The prefetcher trains on demand traffic only (not on
        // writebacks or its own fills).
        if (prefetcher_ && !is_write)
            runPrefetcher(l2_->geometry().blockAddr(addr), !r.hit,
                          now);
    }
    if (r.writeback) {
        // Dirty victim drains to memory; occupies the bus only.
        memory_.writeLine(now, l2_->geometry().lineSize);
    }
    if (r.hit)
        return now + config_.l2HitLatency;
    // Tag check first, then the line fetch from memory.
    return memory_.readLine(now + config_.l2HitLatency,
                            l2_->geometry().lineSize);
}

void
System::runPrefetcher(Addr block_addr, bool missed, Cycle now)
{
    prefetchScratch_.clear();
    prefetcher_->observe(block_addr, missed, prefetchScratch_);
    for (Addr candidate : prefetchScratch_) {
        ++prefetchesIssued_;
        const auto r = l2_->access(candidate, false);
        if (r.writeback)
            memory_.writeLine(now, l2_->geometry().lineSize);
        if (!r.hit) {
            // The fill occupies the bus like any other line fetch;
            // nobody waits on its completion.
            memory_.readLine(now + config_.l2HitLatency,
                             l2_->geometry().lineSize);
        }
    }
}

Cycle
System::fetch(Addr pc, Cycle now)
{
    const auto r = l1i_->access(pc, false);
    if (r.hit)
        return now;  // pipelined L1I hits are fully hidden
    const Cycle done =
        accessL2(pc, false, now + config_.l1iHitLatency);
    if (r.writeback)
        accessL2(r.writebackAddr, true, now);
    return done;
}

Cycle
System::load(Addr addr, Cycle now)
{
    const auto r = l1d_->access(addr, false);
    if (r.hit)
        return now + config_.l1dHitLatency;
    const Cycle done =
        accessL2(addr, false, now + config_.l1dHitLatency);
    if (r.writeback)
        accessL2(r.writebackAddr, true, now);
    return done;
}

Cycle
System::store(Addr addr, Cycle now)
{
    const auto r = l1d_->access(addr, true);
    if (r.hit)
        return now + config_.l1dHitLatency;
    const Cycle done =
        accessL2(addr, false, now + config_.l1dHitLatency);
    if (r.writeback)
        accessL2(r.writebackAddr, true, now);
    return done;
}

SimResult
System::gatherResult(const CoreStats &core_stats) const
{
    SimResult res;
    res.l2Label = l2_->describe();
    res.core = core_stats;
    res.l1i = l1i_->stats();
    res.l1d = l1d_->stats();
    res.l2 = l2_->stats();
    res.memory = memory_.stats();
    res.cpi = core_stats.cpi();
    res.l2Mpki = mpki(res.l2.misses, core_stats.instructions);
    res.l1iMpki = mpki(res.l1i.misses, core_stats.instructions);
    res.l1dMpki = mpki(res.l1d.misses, core_stats.instructions);
    res.l2DemandAccesses = l2DemandAccesses_;
    res.l2DemandMisses = l2DemandMisses_;
    res.l2DemandMpki =
        mpki(l2DemandMisses_, core_stats.instructions);
    res.prefetchesIssued = prefetchesIssued_;

    res.core.registerInto(res.stats, "core.");
    l1i_->registerStats(res.stats, "l1i.");
    l1d_->registerStats(res.stats, "l1d.");
    l2_->registerStats(res.stats, "l2.");
    res.memory.registerInto(res.stats, "mem.");
    res.stats.value("cpi", res.cpi);
    res.stats.value("l2_mpki", res.l2Mpki);
    res.stats.value("l1i_mpki", res.l1iMpki);
    res.stats.value("l1d_mpki", res.l1dMpki);
    res.stats.counter("l2_demand_accesses", res.l2DemandAccesses);
    res.stats.counter("l2_demand_misses", res.l2DemandMisses);
    res.stats.value("l2_demand_mpki", res.l2DemandMpki);
    res.stats.counter("prefetches_issued", res.prefetchesIssued);
    return res;
}

SimResult
System::runTimed(TraceSource &source, InstCount max_instrs)
{
    const CoreStats stats = core_.run(source, *this, max_instrs);
    return gatherResult(stats);
}

SimResult
System::runFunctional(TraceSource &source, InstCount max_instrs)
{
    CoreStats stats;
    TraceInstr instr;
    Addr last_fetch_line = ~Addr(0);
    constexpr unsigned fetch_line_shift = 6;
    InstCount n = 0;
    while (n < max_instrs && source.next(instr)) {
        ++n;
        const Addr line = instr.pc >> fetch_line_shift;
        if (line != last_fetch_line) {
            fetch(instr.pc, 0);
            last_fetch_line = line;
        }
        if (instr.isLoad()) {
            ++stats.loads;
            load(instr.memAddr, 0);
        } else if (instr.isStore()) {
            ++stats.stores;
            store(instr.memAddr, 0);
        } else if (instr.isBranch()) {
            ++stats.branches;
        }
    }
    stats.instructions = n;
    stats.cycles = 0;
    return gatherResult(stats);
}

} // namespace adcache
