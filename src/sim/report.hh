/**
 * @file
 * Structured result emission for the bench/example harness. Every
 * experiment's results are flattened into a ReportGrid — one row per
 * (benchmark x variant) cell, each carrying a StatRegistry — and
 * rendered as JSON, CSV, or a plain-text table depending on
 * ADCACHE_REPORT (default: table).
 *
 * JSON schema (one object):
 *   {
 *     "experiment": "<title>",
 *     "meta": { "<key>": "<value>", ... },
 *     "rows": [
 *       { "benchmark": "<label>", "variant": "<label>",
 *         "stats": { "<stat name>": <number or string>, ... } },
 *       ...
 *     ]
 *   }
 * Counters are emitted as JSON integers, derived metrics as doubles
 * (round-trip precision), text stats as strings.
 *
 * CSV schema: "# key: value" metadata comment lines, then a header
 * row "benchmark,variant,<stat names...>" where the stat columns are
 * the union of all rows' stat names in first-seen order; cells
 * missing a stat are left empty.
 *
 * emitReport() additionally stamps run metadata (git SHA, build
 * type, compiler, ADCACHE_* environment, timestamp; keys prefixed
 * "run.") into JSON and CSV output so an artifact alone identifies
 * the build that produced it. Tables omit it.
 */

#ifndef ADCACHE_SIM_REPORT_HH
#define ADCACHE_SIM_REPORT_HH

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "util/stat_registry.hh"

namespace adcache
{

/** Output format of the result emitters. */
enum class ReportFormat
{
    Table,
    Json,
    Csv,
};

/** Parse an ADCACHE_REPORT-style format name; @p fallback if bad. */
ReportFormat parseReportFormat(const char *text,
                               ReportFormat fallback);

/**
 * Format selected by ADCACHE_REPORT (json|csv|table); defaults to
 * Table. Parsed once, like the other harness environment knobs.
 */
ReportFormat reportFormat();

/** Canonical lower-case name of @p format. */
const char *reportFormatName(ReportFormat format);

/** One emitted row: a labelled statistics registry. */
struct ReportRow
{
    std::string benchmark;
    std::string variant;
    StatRegistry stats;
};

/** A whole experiment's worth of rows plus metadata. */
struct ReportGrid
{
    std::string experiment;
    /** First CSV/table column header (default "benchmark"). */
    std::string benchmarkHeader = "benchmark";
    /** Second CSV/table column header (default "variant"). */
    std::string variantHeader = "variant";
    /** Free-form metadata (instruction budget, jobs, ...). */
    std::vector<std::pair<std::string, std::string>> meta;

    std::vector<ReportRow> rows;

    ReportRow &add(std::string benchmark, std::string variant);
    void addMeta(std::string key, std::string value);
};

/**
 * Flatten suite rows into a grid: one ReportRow per (benchmark x
 * variant), stats taken from each SimResult's registry.
 * @param variant_names display label per variant, same order as the
 *        suite's variants; falls back to each result's l2Label.
 */
ReportGrid
gridFromSuite(const std::string &experiment,
              const std::vector<SuiteRow> &rows,
              const std::vector<std::string> &variant_names);

/** Render @p grid as a JSON document (ends with a newline). */
std::string renderJson(const ReportGrid &grid);

/** Render @p grid as CSV (header + one line per row). */
std::string renderCsv(const ReportGrid &grid);

/** Render @p grid as a column-aligned text table. */
std::string renderTable(const ReportGrid &grid);

/** Render @p grid in @p format and write it to @p out. */
void emitReport(const ReportGrid &grid, ReportFormat format,
                std::FILE *out = stdout);

} // namespace adcache

#endif // ADCACHE_SIM_REPORT_HH
