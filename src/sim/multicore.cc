#include "sim/multicore.hh"

#include "util/logging.hh"
#include "workloads/suite.hh"

namespace adcache
{

namespace
{

/** One core's private front end: L1s + its instruction stream. */
struct Core
{
    std::unique_ptr<TraceSource> source;
    std::unique_ptr<Cache> l1i;
    std::unique_ptr<Cache> l1d;
    Addr addressOffset = 0;
    InstCount instructions = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    Addr lastFetchLine = ~Addr(0);
    bool done = false;
};

} // namespace

SharedL2Result
runSharedL2(const SharedL2Config &config, InstCount total_instrs)
{
    adcache_assert(!config.workloads.empty());

    auto l2 = config.l2.make();
    const unsigned line_shift = l2->geometry().offsetBits();

    std::vector<Core> cores;
    for (std::size_t i = 0; i < config.workloads.size(); ++i) {
        const auto *def = findBenchmark(config.workloads[i]);
        if (!def)
            fatal("unknown benchmark '%s'",
                  config.workloads[i].c_str());
        Core core;
        core.source = makeBenchmark(*def);
        core.l1i = std::make_unique<Cache>(config.l1i);
        core.l1d = std::make_unique<Cache>(config.l1d);
        // High-bit offset: distinct address spaces, identical set
        // mapping — maximal (realistic) set contention.
        core.addressOffset = Addr(i) << 48;
        cores.push_back(std::move(core));
    }

    auto access_l2 = [&](Core &core, Addr addr, bool is_write) {
        ++core.l2Accesses;
        const auto r = l2->access(addr, is_write);
        if (!r.hit)
            ++core.l2Misses;
        if (r.writeback) {
            // Writebacks below the L2 leave the model; nothing to
            // account functionally.
        }
    };

    auto run_one = [&](Core &core) {
        TraceInstr instr;
        if (!core.source->next(instr)) {
            core.done = true;
            return;
        }
        ++core.instructions;
        const Addr pc = instr.pc + core.addressOffset;
        const Addr line = pc >> line_shift;
        if (line != core.lastFetchLine) {
            core.lastFetchLine = line;
            const auto r = core.l1i->access(pc, false);
            if (!r.hit)
                access_l2(core, pc, false);
            if (r.writeback)
                access_l2(core, r.writebackAddr, true);
        }
        if (instr.isMem()) {
            const Addr addr = instr.memAddr + core.addressOffset;
            const auto r = core.l1d->access(addr, instr.isStore());
            if (!r.hit)
                access_l2(core, addr, false);
            if (r.writeback)
                access_l2(core, r.writebackAddr, true);
        }
    };

    InstCount executed = 0;
    std::size_t next_core = 0;
    unsigned live = unsigned(cores.size());
    while (executed < total_instrs && live > 0) {
        Core &core = cores[next_core];
        next_core = (next_core + 1) % cores.size();
        if (core.done)
            continue;
        const bool was_done = core.done;
        run_one(core);
        if (!was_done && core.done)
            --live;
        else
            ++executed;
    }

    SharedL2Result result;
    result.l2Label = l2->describe();
    result.totalInstructions = executed;
    result.l2 = l2->stats();
    result.l2Mpki = executed == 0 ? 0.0
                                  : 1000.0 * double(result.l2.misses) /
                                        double(executed);
    for (std::size_t i = 0; i < cores.size(); ++i) {
        SharedL2Result::PerCore pc;
        pc.workload = config.workloads[i];
        pc.instructions = cores[i].instructions;
        pc.l2Accesses = cores[i].l2Accesses;
        pc.l2Misses = cores[i].l2Misses;
        pc.l2Mpki = pc.instructions == 0
                        ? 0.0
                        : 1000.0 * double(pc.l2Misses) /
                              double(pc.instructions);
        result.cores.push_back(pc);
    }
    return result;
}

} // namespace adcache
