#include "sim/report.hh"

#include <cctype>
#include <cstdlib>

#include "obs/run_meta.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace adcache
{

ReportFormat
parseReportFormat(const char *text, ReportFormat fallback)
{
    if (!text)
        return fallback;
    std::string name(text);
    for (char &c : name)
        c = char(std::tolower(static_cast<unsigned char>(c)));
    if (name == "table")
        return ReportFormat::Table;
    if (name == "json")
        return ReportFormat::Json;
    if (name == "csv")
        return ReportFormat::Csv;
    warn("ignoring unknown ADCACHE_REPORT='%s' "
         "(expected json|csv|table)",
         text);
    return fallback;
}

ReportFormat
reportFormat()
{
    static const ReportFormat format = parseReportFormat(
        std::getenv("ADCACHE_REPORT"), ReportFormat::Table);
    return format;
}

const char *
reportFormatName(ReportFormat format)
{
    switch (format) {
      case ReportFormat::Table:
        return "table";
      case ReportFormat::Json:
        return "json";
      case ReportFormat::Csv:
        return "csv";
    }
    return "?";
}

ReportRow &
ReportGrid::add(std::string benchmark, std::string variant)
{
    rows.emplace_back();
    rows.back().benchmark = std::move(benchmark);
    rows.back().variant = std::move(variant);
    return rows.back();
}

void
ReportGrid::addMeta(std::string key, std::string value)
{
    meta.emplace_back(std::move(key), std::move(value));
}

ReportGrid
gridFromSuite(const std::string &experiment,
              const std::vector<SuiteRow> &rows,
              const std::vector<std::string> &variant_names)
{
    ReportGrid grid;
    grid.experiment = experiment;
    for (const SuiteRow &row : rows) {
        for (std::size_t v = 0; v < row.results.size(); ++v) {
            const SimResult &res = row.results[v];
            const std::string label = v < variant_names.size()
                                          ? variant_names[v]
                                          : res.l2Label;
            ReportRow &out = grid.add(row.benchmark, label);
            out.stats = res.stats;
            out.stats.text("l2_label", res.l2Label);
        }
    }
    return grid;
}

namespace
{

/** JSON string escaping (control chars, quotes, backslash). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Round-trip double formatting; always a valid JSON number. */
std::string
jsonNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    std::string s(buf);
    // %.17g renders nan/inf, which JSON lacks; clamp to null.
    if (s.find("nan") != std::string::npos ||
        s.find("inf") != std::string::npos)
        return "null";
    return s;
}

std::string
statJsonValue(const StatEntry &e)
{
    switch (e.kind) {
      case StatEntry::Kind::Counter: {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(e.counter));
        return buf;
      }
      case StatEntry::Kind::Value:
        return jsonNumber(e.value);
      case StatEntry::Kind::Text:
        return "\"" + jsonEscape(e.text) + "\"";
    }
    return "null";
}

std::string
statCsvValue(const StatEntry &e)
{
    switch (e.kind) {
      case StatEntry::Kind::Counter: {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(e.counter));
        return buf;
      }
      case StatEntry::Kind::Value: {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", e.value);
        return buf;
      }
      case StatEntry::Kind::Text:
        return e.text;
    }
    return "";
}

/** Quote a CSV field if it contains a delimiter, quote or newline. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += "\"";
    return out;
}

/** Union of all rows' stat names, in first-seen order. */
std::vector<std::string>
statColumns(const ReportGrid &grid)
{
    std::vector<std::string> names;
    StatRegistry seen;
    for (const ReportRow &row : grid.rows) {
        for (const StatEntry &e : row.stats.entries()) {
            if (!seen.find(e.name)) {
                seen.counter(e.name, 0);
                names.push_back(e.name);
            }
        }
    }
    return names;
}

bool
anyVariant(const ReportGrid &grid)
{
    for (const ReportRow &row : grid.rows)
        if (!row.variant.empty())
            return true;
    return false;
}

} // namespace

std::string
renderJson(const ReportGrid &grid)
{
    std::string out = "{\n";
    out += "  \"experiment\": \"" + jsonEscape(grid.experiment) +
           "\",\n";
    // One pair per line so line-oriented tools (and the verify
    // recipe's determinism filter) can match individual meta keys.
    out += "  \"meta\": {";
    for (std::size_t i = 0; i < grid.meta.size(); ++i) {
        out += i ? ",\n    " : "\n    ";
        out += "\"" + jsonEscape(grid.meta[i].first) + "\": \"" +
               jsonEscape(grid.meta[i].second) + "\"";
    }
    if (!grid.meta.empty())
        out += "\n  ";
    out += "},\n";
    out += "  \"rows\": [\n";
    for (std::size_t r = 0; r < grid.rows.size(); ++r) {
        const ReportRow &row = grid.rows[r];
        out += "    {\"benchmark\": \"" + jsonEscape(row.benchmark) +
               "\", \"variant\": \"" + jsonEscape(row.variant) +
               "\", \"stats\": {";
        const auto &entries = row.stats.entries();
        for (std::size_t i = 0; i < entries.size(); ++i) {
            out += i ? ", " : "";
            out += "\"" + jsonEscape(entries[i].name) +
                   "\": " + statJsonValue(entries[i]);
        }
        out += "}}";
        out += r + 1 < grid.rows.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

std::string
renderCsv(const ReportGrid &grid)
{
    const auto columns = statColumns(grid);
    const bool variants = anyVariant(grid);

    // Metadata rides along as "# key: value" comment lines ahead of
    // the header row; consumers that dislike comments can drop
    // leading '#' lines without parsing.
    std::string out;
    for (const auto &kv : grid.meta) {
        std::string line = kv.first + ": " + kv.second;
        // Keep the comment block line-oriented even if a value
        // carries newlines.
        for (char &c : line)
            if (c == '\n' || c == '\r')
                c = ' ';
        out += "# " + line + "\n";
    }
    out += csvField(grid.benchmarkHeader);
    if (variants)
        out += "," + csvField(grid.variantHeader);
    for (const auto &name : columns)
        out += "," + csvField(name);
    out += "\n";

    for (const ReportRow &row : grid.rows) {
        out += csvField(row.benchmark);
        if (variants)
            out += "," + csvField(row.variant);
        for (const auto &name : columns) {
            out += ",";
            if (const StatEntry *e = row.stats.find(name))
                out += csvField(statCsvValue(*e));
        }
        out += "\n";
    }
    return out;
}

std::string
renderTable(const ReportGrid &grid)
{
    const auto columns = statColumns(grid);
    const bool variants = anyVariant(grid);

    std::vector<std::string> header{grid.benchmarkHeader};
    if (variants)
        header.push_back(grid.variantHeader);
    for (const auto &name : columns)
        header.push_back(name);

    TextTable table(header);
    for (const ReportRow &row : grid.rows) {
        std::vector<std::string> cells{row.benchmark};
        if (variants)
            cells.push_back(row.variant);
        for (const auto &name : columns) {
            const StatEntry *e = row.stats.find(name);
            if (!e) {
                cells.emplace_back("-");
            } else if (e->kind == StatEntry::Kind::Value) {
                cells.push_back(TextTable::num(e->value, 3));
            } else {
                cells.push_back(statCsvValue(*e));
            }
        }
        table.addRow(std::move(cells));
    }
    return table.render();
}

void
emitReport(const ReportGrid &grid, ReportFormat format,
           std::FILE *out)
{
    std::string text;
    switch (format) {
      case ReportFormat::Json:
      case ReportFormat::Csv: {
        // Machine-readable artifacts are self-describing: stamp the
        // run metadata (git SHA, build type, env knobs, timestamp)
        // into the grid's meta block. Tables stay human-sized.
        ReportGrid stamped = grid;
        obs::appendRunMeta(stamped);
        text = format == ReportFormat::Json ? renderJson(stamped)
                                            : renderCsv(stamped);
        break;
      }
      case ReportFormat::Table:
        text = renderTable(grid);
        break;
    }
    std::fwrite(text.data(), 1, text.size(), out);
}

} // namespace adcache
