/**
 * @file
 * Whole-system configuration mirroring Table 1 of the paper, plus the
 * L2 organisation variants every experiment swaps in.
 */

#ifndef ADCACHE_SIM_CONFIG_HH
#define ADCACHE_SIM_CONFIG_HH

#include <string>

#include "cache/cache.hh"
#include "core/adaptive_cache.hh"
#include "core/prefetcher.hh"
#include "core/sbar_cache.hh"
#include "cpu/ooo_core.hh"
#include "mem/main_memory.hh"

namespace adcache
{

/** Which organisation implements the L2 (or an adaptive L1). */
struct L2Spec
{
    enum class Kind
    {
        Conventional,
        Adaptive,
        Sbar,
    };

    Kind kind = Kind::Conventional;
    CacheConfig conventional;  //!< used when kind == Conventional
    AdaptiveConfig adaptive;   //!< used when kind == Adaptive
    SbarConfig sbar;           //!< used when kind == Sbar

    /** Instantiate the configured cache model. */
    std::unique_ptr<CacheModel> make() const;

    /** Short label for tables. */
    std::string label() const;

    // --- factories ---------------------------------------------------
    static L2Spec lru(std::uint64_t size = 512 * 1024,
                      unsigned assoc = 8, unsigned line = 64);
    static L2Spec policy(PolicyType type,
                         std::uint64_t size = 512 * 1024,
                         unsigned assoc = 8, unsigned line = 64);
    static L2Spec adaptiveLruLfu(unsigned partial_tag_bits = 0,
                                 std::uint64_t size = 512 * 1024,
                                 unsigned assoc = 8, unsigned line = 64);
    static L2Spec adaptiveDual(PolicyType a, PolicyType b,
                               unsigned partial_tag_bits = 0,
                               std::uint64_t size = 512 * 1024,
                               unsigned assoc = 8, unsigned line = 64);
    static L2Spec fromAdaptive(const AdaptiveConfig &config);
    static L2Spec fromSbar(const SbarConfig &config);
};

/** Table 1: the simulated processor configuration. */
struct SystemConfig
{
    // 16KB, 64B lines, 4-way, LRU, 2-cycle L1s.
    CacheConfig l1i{16 * 1024, 4, 64, PolicyType::LRU, 1};
    CacheConfig l1d{16 * 1024, 4, 64, PolicyType::LRU, 1};
    Cycle l1iHitLatency = 2;
    Cycle l1dHitLatency = 2;

    /** Adaptive L1s for the Sec. 4.6 experiment. */
    bool adaptiveL1i = false;
    bool adaptiveL1d = false;

    /** Unified L2: 512KB, 64B lines, 8-way, 15-cycle hits. */
    L2Spec l2 = L2Spec::lru();
    Cycle l2HitLatency = 15;

    /** Optional L2 prefetcher (extension; the paper's future work
     *  suggests adapting over hybrid prefetchers). */
    PrefetcherType l2Prefetcher = PrefetcherType::None;
    unsigned prefetchDegree = 2;

    MemoryConfig memory;
    CoreConfig core;

    /** Render the Table 1-style configuration summary. */
    std::string describe() const;
};

} // namespace adcache

#endif // ADCACHE_SIM_CONFIG_HH
