/**
 * @file
 * Reference model of the adaptive cache (Algorithm 1), in the exact
 * per-set differentiating-miss-counter form the Appendix's 2x
 * theorem is proved for.
 *
 * Components are reference shadow arrays (RefCache), the selector is
 * RefExactCounters, and the victim-selection cases 1-3 of Algorithm 1
 * are transcribed directly from the paper: follow the imitated
 * component's eviction if that block is resident, otherwise evict any
 * resident block outside the imitated component's contents, otherwise
 * (partial-tag aliasing only) fall back to the same rotating
 * arbitrary choice the production cache documents.
 */

#ifndef ADCACHE_ORACLE_REF_ADAPTIVE_HH
#define ADCACHE_ORACLE_REF_ADAPTIVE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "oracle/ref_cache.hh"
#include "oracle/ref_history.hh"

namespace adcache
{

/** Outcome of one reference to the reference adaptive cache. */
struct RefAdaptiveOutcome
{
    bool hit = false;
    bool evicted = false;
    Addr evictedBlock = 0;  //!< full block address of the victim
    bool evictedDirty = false;
    bool replaced = false;  //!< a replacement decision was made
    unsigned winner = 0;    //!< imitated component (iff replaced)
    bool fallback = false;  //!< case-3 arbitrary eviction fired
    bool bypassed = false;  //!< winner's admission refused the fill
};

/** The naive adaptive-cache model. */
class RefAdaptiveCache
{
  public:
    /**
     * @param admission per-component TinyLFU flags, parallel to
     *                  @p policies (empty = admission off). A flagged
     *                  component's shadow bypasses refused fills and
     *                  the adaptive array imitates the winner's
     *                  verdict, matching the production AdaptiveCache.
     */
    RefAdaptiveCache(const RefGeometry &geom,
                     const std::vector<PolicyType> &policies,
                     unsigned partial_bits = 0, bool xor_fold = false,
                     const std::vector<std::uint8_t> &admission = {});

    RefAdaptiveOutcome access(Addr addr, bool is_write);

    bool contains(Addr addr) const;
    std::vector<Addr> residentBlocks() const;

    unsigned numPolicies() const { return unsigned(shadows_.size()); }
    std::uint64_t shadowMisses(unsigned k) const;

    /** Exact differentiating-miss counter of component @p k in @p set. */
    std::uint64_t counterOf(unsigned set, unsigned k) const;

    /** Replacement decisions imitating component @p k in @p set. */
    std::uint64_t decisionsOf(unsigned set, unsigned k) const;

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t writebacks() const { return writebacks_; }
    std::uint64_t fallbacks() const { return fallbacks_; }
    std::uint64_t bypasses() const { return bypasses_; }

    const RefGeometry &geometry() const { return geom_; }

  private:
    struct Way
    {
        Addr tag = 0;  //!< always the full tag
        bool valid = false;
        bool dirty = false;
    };

    unsigned chooseVictim(unsigned set, unsigned winner,
                          const RefOutcome &winner_outcome,
                          bool *used_fallback);

    RefGeometry geom_;
    /** Shared admission filter of the flagged components; declared
     *  before shadows_, which hold pointers into it. */
    std::unique_ptr<RefTinyLfu> admission_;
    std::vector<std::unique_ptr<RefCache>> shadows_;
    std::vector<std::vector<Way>> sets_;
    std::vector<RefExactCounters> counters_;            // per set
    std::vector<std::vector<std::uint64_t>> decisions_; // [set][k]
    std::vector<unsigned> fallbackPtr_;                 // per set
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t writebacks_ = 0;
    std::uint64_t fallbacks_ = 0;
    std::uint64_t bypasses_ = 0;
};

} // namespace adcache

#endif // ADCACHE_ORACLE_REF_ADAPTIVE_HH
