/**
 * @file
 * Adversarial access-stream generation and failing-stream shrinking
 * for the differential harness.
 *
 * The fuzzer knows the shape of the cache under test and composes
 * streams from the motifs that historically break replacement logic:
 * thrash loops sized at assoc-1/assoc/assoc+1 blocks of one set,
 * sequential scans, abrupt phase flips, clusters of partial-tag
 * aliases (same set, identical folded tag, distinct full tags), and
 * store/load mixes. A failing stream is shrunk by delta debugging
 * (chunk removal at halving granularity) down to a minimal repro the
 * caller can print as a replayable literal.
 *
 * Env knobs for soak runs (parsed once, warn-and-fallback on
 * malformed values like the other ADCACHE_* knobs):
 *   ADCACHE_FUZZ_ITERS  accesses per fuzzed config
 *   ADCACHE_FUZZ_SEED   base seed for stream generation
 */

#ifndef ADCACHE_ORACLE_TRACE_FUZZER_HH
#define ADCACHE_ORACLE_TRACE_FUZZER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "oracle/differential.hh"
#include "util/rng.hh"

namespace adcache
{

/** Shape of the cache a fuzz stream should attack. */
struct FuzzShape
{
    unsigned numSets = 16;
    unsigned assoc = 4;
    unsigned lineSize = 64;
    /** Shadow partial-tag width; 0 disables alias-cluster motifs. */
    unsigned partialTagBits = 0;
    /** Probability an access is a store. */
    double writeFraction = 0.4;
};

/** Seeded adversarial stream generator. */
class TraceFuzzer
{
  public:
    TraceFuzzer(std::uint64_t seed, const FuzzShape &shape);

    /** Generate a stream of @p length accesses. */
    std::vector<Access> generate(std::size_t length);

    /**
     * Shrink @p failing (which must make @p checker report a
     * mismatch) to a minimal still-failing stream via delta
     * debugging. Deterministic; re-runs the checker per candidate.
     */
    static std::vector<Access>
    shrink(const DifferentialChecker &checker,
           std::vector<Access> failing);

    /** Render a stream as a replayable C++ initializer literal. */
    static std::string toLiteral(const std::vector<Access> &stream);

  private:
    Addr blockAddr(std::uint64_t block) const;
    void emitSegment(std::vector<Access> &out, std::size_t budget);

    FuzzShape shape_;
    Rng rng_;
};

/** ADCACHE_FUZZ_ITERS, default @p fallback (cached after first read). */
std::size_t fuzzIters(std::size_t fallback);

/** ADCACHE_FUZZ_SEED, default @p fallback (cached after first read). */
std::uint64_t fuzzSeed(std::uint64_t fallback);

} // namespace adcache

#endif // ADCACHE_ORACLE_TRACE_FUZZER_HH
