/**
 * @file
 * Lockstep differential verification of the adaptive key-value cache
 * (src/kv) against the reference Algorithm 1 model.
 *
 * The kv cache in its verification shape — one shard, Bucket eviction
 * scope, identity key hash, exact counters — is structurally the
 * paper's cache with keys in place of addresses: bucket == set, key
 * tag == block tag. Driving it with key = addr >> offsetBits while
 * the oracle consumes addr directly puts every per-access observable
 * in one-to-one correspondence: hit/miss, victim identity, whether a
 * replacement decision was made and which component won it, case-3
 * fallbacks, the per-set differentiating-miss counters, and (on
 * periodic sweeps) full residency and decision totals.
 */

#ifndef ADCACHE_ORACLE_KV_LOCKSTEP_HH
#define ADCACHE_ORACLE_KV_LOCKSTEP_HH

#include <cstddef>

#include "kv/kv_types.hh"
#include "oracle/differential.hh"

namespace adcache
{

/** Shape of the kv-vs-oracle pair. */
struct KvLockstepParams
{
    unsigned numBuckets = 16;
    unsigned bucketWays = 4;
    unsigned partialBits = 0; //!< shadow tag width (0 = full)
    bool xorFold = false;
    std::size_t sweepEvery = 256; //!< residency sweep period

    /** Competing components (evict policy + admission flag); the
     *  oracle runs the same pair, so CMS-LFU eviction and TinyLFU
     *  admission are lockstep-verified through here too. */
    kv::KvComponentSpec components[kv::kvNumComponents] = {
        {PolicyType::LRU, false}, {PolicyType::LFU, false}};
};

/**
 * Single-shard Bucket-scope AdaptiveKvCache vs RefAdaptiveCache
 * running the configured components over the same shape.
 */
PairFactory makeKvAdaptivePair(const KvLockstepParams &params);

} // namespace adcache

#endif // ADCACHE_ORACLE_KV_LOCKSTEP_HH
