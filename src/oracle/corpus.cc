#include "oracle/corpus.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <istream>
#include <map>
#include <sstream>

#include "util/logging.hh"

namespace adcache
{

namespace
{

std::string
lowercase(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return char(std::tolower(c));
    });
    return s;
}

/** key=value tokens after the kind word. */
std::map<std::string, std::string>
parseKeyValues(std::istringstream &in, const std::string &line)
{
    std::map<std::string, std::string> kv;
    std::string token;
    while (in >> token) {
        const auto eq = token.find('=');
        if (eq == std::string::npos || eq == 0)
            fatal("malformed config token '%s' in '%s'",
                  token.c_str(), line.c_str());
        kv[lowercase(token.substr(0, eq))] = token.substr(eq + 1);
    }
    return kv;
}

std::uint64_t
numberOr(const std::map<std::string, std::string> &kv,
         const std::string &key, std::uint64_t fallback)
{
    const auto it = kv.find(key);
    if (it == kv.end())
        return fallback;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(it->second.c_str(), &end, 0);
    if (!end || *end != '\0')
        fatal("malformed number '%s' for key '%s'",
              it->second.c_str(), key.c_str());
    return v;
}

std::string
stringOr(const std::map<std::string, std::string> &kv,
         const std::string &key, const std::string &fallback)
{
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
}

} // namespace

PairFactory
pairFactoryFor(const std::string &config_line)
{
    std::istringstream in(config_line);
    std::string kind;
    in >> kind;
    kind = lowercase(kind);
    auto kv = parseKeyValues(in, config_line);

    const auto size = numberOr(kv, "size", 4096);
    const auto assoc = unsigned(numberOr(kv, "assoc", 4));
    const auto line = unsigned(numberOr(kv, "line", 64));

    if (kind == "cache") {
        CacheConfig c;
        c.sizeBytes = size;
        c.assoc = assoc;
        c.lineSize = line;
        c.policy = parsePolicyType(stringOr(kv, "policy", "lru"));
        return makeCachePair(c);
    }
    if (kind == "adaptive") {
        AdaptiveConfig c;
        c.sizeBytes = size;
        c.assoc = assoc;
        c.lineSize = line;
        c.partialTagBits = unsigned(numberOr(kv, "partial", 0));
        c.xorFoldTags = numberOr(kv, "xor", 0) != 0;
        c.policies.clear();
        std::istringstream list(stringOr(kv, "policies", "lru+lfu"));
        std::string name;
        while (std::getline(list, name, '+'))
            c.policies.push_back(parsePolicyType(name));
        const std::string admit = stringOr(kv, "admit", "");
        if (!admit.empty()) {
            std::istringstream flags(admit);
            while (std::getline(flags, name, '+'))
                c.admission.push_back(name == "1" ? 1 : 0);
        }
        return makeAdaptivePair(c);
    }
    if (kind == "sbar") {
        SbarConfig c;
        c.sizeBytes = size;
        c.assoc = assoc;
        c.lineSize = line;
        c.policyA = parsePolicyType(stringOr(kv, "pola", "lru"));
        c.policyB = parsePolicyType(stringOr(kv, "polb", "lfu"));
        c.numLeaders = unsigned(numberOr(kv, "leaders", 4));
        c.partialTagBits = unsigned(numberOr(kv, "partial", 0));
        c.xorFoldTags = numberOr(kv, "xor", 0) != 0;
        c.pselBits = unsigned(numberOr(kv, "psel", 10));
        c.historyDepth = unsigned(numberOr(kv, "history", 0));
        return makeSbarPair(c);
    }
    fatal("unknown differential pair kind '%s'", kind.c_str());
}

RegressionTrace
parseTrace(std::istream &in)
{
    RegressionTrace trace;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // Trim trailing CR for files written on other platforms.
        while (!line.empty() &&
               (line.back() == '\r' || line.back() == ' '))
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;

        std::istringstream fields(line);
        std::string head;
        fields >> head;
        if (lowercase(head) == "config") {
            std::string rest;
            std::getline(fields, rest);
            const auto start = rest.find_first_not_of(' ');
            trace.configLine = start == std::string::npos
                                   ? std::string()
                                   : rest.substr(start);
            trace.factory = pairFactoryFor(trace.configLine);
            continue;
        }

        const std::string op = lowercase(head);
        if (op != "r" && op != "w")
            fatal("trace line %zu: expected R/W/config, got '%s'",
                  lineno, head.c_str());
        std::string addr_text;
        if (!(fields >> addr_text))
            fatal("trace line %zu: missing address", lineno);
        char *end = nullptr;
        const unsigned long long addr =
            std::strtoull(addr_text.c_str(), &end, 0);
        if (!end || *end != '\0')
            fatal("trace line %zu: malformed address '%s'", lineno,
                  addr_text.c_str());
        trace.stream.push_back({Addr(addr), op == "w"});
    }
    if (!trace.factory)
        fatal("trace has no config line");
    return trace;
}

std::string
formatTrace(const std::string &config_line,
            const std::vector<Access> &stream)
{
    std::ostringstream out;
    out << "config " << config_line << "\n";
    for (const Access &a : stream)
        out << (a.write ? "W" : "R") << " 0x" << std::hex << a.addr
            << std::dec << "\n";
    return out.str();
}

std::string
cacheConfigLine(const CacheConfig &config)
{
    std::ostringstream out;
    out << "cache policy=" << lowercase(policyName(config.policy))
        << " size=" << config.sizeBytes << " assoc=" << config.assoc
        << " line=" << config.lineSize;
    return out.str();
}

std::string
adaptiveConfigLine(const AdaptiveConfig &config)
{
    std::ostringstream out;
    out << "adaptive policies=";
    for (std::size_t k = 0; k < config.policies.size(); ++k) {
        if (k)
            out << "+";
        out << lowercase(policyName(config.policies[k]));
    }
    out << " size=" << config.sizeBytes << " assoc=" << config.assoc
        << " line=" << config.lineSize
        << " partial=" << config.partialTagBits
        << " xor=" << (config.xorFoldTags ? 1 : 0);
    if (!config.admission.empty()) {
        out << " admit=";
        for (std::size_t k = 0; k < config.admission.size(); ++k) {
            if (k)
                out << "+";
            out << (config.admission[k] ? 1 : 0);
        }
    }
    return out.str();
}

std::string
sbarConfigLine(const SbarConfig &config)
{
    std::ostringstream out;
    out << "sbar pola=" << lowercase(policyName(config.policyA))
        << " polb=" << lowercase(policyName(config.policyB))
        << " size=" << config.sizeBytes << " assoc=" << config.assoc
        << " line=" << config.lineSize
        << " leaders=" << config.numLeaders
        << " partial=" << config.partialTagBits
        << " xor=" << (config.xorFoldTags ? 1 : 0)
        << " psel=" << config.pselBits
        << " history=" << config.historyDepth;
    return out.str();
}

} // namespace adcache
