#include "oracle/ref_policy.hh"

#include <algorithm>
#include <list>
#include <vector>

#include "util/logging.hh"

namespace adcache
{

namespace
{

/**
 * LRU / MRU / FIFO as one explicit stack of ways.
 *
 * The stack is ordered most-recent-first (for recency policies) or
 * newest-fill-first (for FIFO). Ways not currently valid are simply
 * absent from the stack; victim() is only consulted when the set is
 * full, i.e. when every way is on the stack.
 *
 * Tie-breaking: the production policies break stamp ties toward the
 * lowest way index, but stamps are unique for any way that has been
 * touched, so the stack order is the complete specification.
 */
class StackPolicy : public RefPolicy
{
  public:
    enum class Kind
    {
        Lru,  //!< victim = bottom of the recency stack
        Mru,  //!< victim = top of the recency stack
        Fifo, //!< fill-order stack, hits do not move entries
    };

    StackPolicy(Kind kind, unsigned assoc) : kind_(kind), assoc_(assoc)
    {
        adcache_assert(assoc >= 1);
    }

    void
    onFill(unsigned way) override
    {
        remove(way);
        stack_.push_front(way);
    }

    void
    onHit(unsigned way) override
    {
        if (kind_ == Kind::Fifo)
            return;  // FIFO never refreshes on a hit
        remove(way);
        stack_.push_front(way);
    }

    void onInvalidate(unsigned way) override { remove(way); }

    unsigned
    victim() const override
    {
        adcache_assert(!stack_.empty());
        switch (kind_) {
          case Kind::Mru:
            return stack_.front();
          case Kind::Lru:
          case Kind::Fifo:
            return stack_.back();
        }
        panic("unreachable");
    }

    unsigned assoc() const override { return assoc_; }

  private:
    void
    remove(unsigned way)
    {
        stack_.remove(way);
    }

    Kind kind_;
    unsigned assoc_;
    std::list<unsigned> stack_;
};

/**
 * LFU with plain integers: a per-way use count saturating at the same
 * 5-bit ceiling as the production counters, plus a fill sequence
 * number for the production tie-break (least count, then oldest
 * fill).
 */
class CounterLfuPolicy : public RefPolicy
{
  public:
    static constexpr unsigned countCeiling = 31;  // 5-bit saturation

    explicit CounterLfuPolicy(unsigned assoc)
        : assoc_(assoc), count_(assoc, 0), fillSeq_(assoc, 0)
    {
        adcache_assert(assoc >= 1);
    }

    void
    onFill(unsigned way) override
    {
        count_.at(way) = 1;
        fillSeq_.at(way) = ++clock_;
    }

    void
    onHit(unsigned way) override
    {
        if (count_.at(way) < countCeiling)
            ++count_[way];
    }

    void
    onInvalidate(unsigned way) override
    {
        count_.at(way) = 0;
        fillSeq_.at(way) = 0;
    }

    unsigned
    victim() const override
    {
        unsigned best = 0;
        for (unsigned w = 1; w < assoc_; ++w) {
            if (count_[w] < count_[best] ||
                (count_[w] == count_[best] &&
                 fillSeq_[w] < fillSeq_[best])) {
                best = w;
            }
        }
        return best;
    }

    unsigned assoc() const override { return assoc_; }

  private:
    unsigned assoc_;
    std::vector<unsigned> count_;
    std::vector<std::uint64_t> fillSeq_;
    std::uint64_t clock_ = 0;
};

} // namespace

bool
refPolicySupported(PolicyType type)
{
    switch (type) {
      case PolicyType::LRU:
      case PolicyType::MRU:
      case PolicyType::FIFO:
      case PolicyType::LFU:
      case PolicyType::CmsLfu:
        return true;
      default:
        return false;
    }
}

std::unique_ptr<RefPolicy>
makeRefPolicy(PolicyType type, unsigned assoc)
{
    switch (type) {
      case PolicyType::LRU:
        return std::make_unique<StackPolicy>(StackPolicy::Kind::Lru,
                                             assoc);
      case PolicyType::MRU:
        return std::make_unique<StackPolicy>(StackPolicy::Kind::Mru,
                                             assoc);
      case PolicyType::FIFO:
        return std::make_unique<StackPolicy>(StackPolicy::Kind::Fifo,
                                             assoc);
      case PolicyType::LFU:
        return std::make_unique<CounterLfuPolicy>(assoc);
      case PolicyType::CmsLfu:
        // Supported, but its sets share one sketch: RefCache builds
        // it per set through makeRefCmsLfuPolicy (ref_sketch.hh).
        panic("CMS-LFU needs a shared sketch; use "
              "makeRefCmsLfuPolicy");
      default:
        panic("no reference model for policy %s", policyName(type));
    }
}

} // namespace adcache
