/**
 * @file
 * On-disk regression corpus for the differential harness.
 *
 * A trace file is plain text: comment lines (#...), one `config`
 * line naming the production/oracle pair, then one access per line
 * (`R 0xADDR` / `W 0xADDR`). Shrunk repro streams are checked in
 * under tests/data/regressions/ and replayed by ctest; see
 * docs/TESTING.md for how to add one.
 *
 * Config-line grammar (keys may appear in any order):
 *   config cache policy=lru size=4096 assoc=4 line=64
 *   config adaptive policies=lru+lfu size=4096 assoc=4 line=64 \
 *          partial=8 xor=0
 *   config sbar pola=lru polb=lfu size=65536 assoc=8 line=64 \
 *          leaders=8 partial=0 xor=0 psel=10 history=0
 */

#ifndef ADCACHE_ORACLE_CORPUS_HH
#define ADCACHE_ORACLE_CORPUS_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "oracle/differential.hh"

namespace adcache
{

/** One parsed regression trace. */
struct RegressionTrace
{
    std::string configLine;  //!< without the leading "config "
    PairFactory factory;
    std::vector<Access> stream;
};

/** Parse a trace from @p in; fatal() on malformed input. */
RegressionTrace parseTrace(std::istream &in);

/** Render a trace file (config line + accesses). */
std::string formatTrace(const std::string &config_line,
                        const std::vector<Access> &stream);

/** Build a PairFactory from a config line (no "config " prefix). */
PairFactory pairFactoryFor(const std::string &config_line);

/** Config-line builders matching pairFactoryFor's grammar. */
std::string cacheConfigLine(const CacheConfig &config);
std::string adaptiveConfigLine(const AdaptiveConfig &config);
std::string sbarConfigLine(const SbarConfig &config);

} // namespace adcache

#endif // ADCACHE_ORACLE_CORPUS_HH
