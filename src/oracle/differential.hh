/**
 * @file
 * Lockstep differential verification of production caches against
 * the reference models in src/oracle.
 *
 * A LockstepPair owns one production cache and its oracle; step()
 * feeds both one access and diffs every per-access observable
 * (hit/miss, writeback identity, shadow miss counters, selector
 * decisions, fallback counts, global selection state) plus a
 * periodic full-residency sweep. The DifferentialChecker runs a pair
 * factory over an access stream and reports the first divergence.
 *
 * Pairs exist for every production organisation: conventional Cache,
 * AdaptiveCache (exact-counter form), multi-policy AdaptiveCache,
 * and SbarCache. makeBuggyCachePair() deliberately mispairs the
 * production policy with a different oracle — the harness's own
 * smoke test: it must diverge, and the fuzzer must shrink it.
 */

#ifndef ADCACHE_ORACLE_DIFFERENTIAL_HH
#define ADCACHE_ORACLE_DIFFERENTIAL_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "core/adaptive_cache.hh"
#include "core/sbar_cache.hh"
#include "oracle/ref_cache.hh"

namespace adcache
{

/** One element of an access stream. */
struct Access
{
    Addr addr = 0;
    bool write = false;

    bool
    operator==(const Access &o) const
    {
        return addr == o.addr && write == o.write;
    }
};

/** First observed divergence between production and oracle. */
struct Mismatch
{
    std::size_t index = 0;    //!< access index (or stream size for
                              //!< end-of-run checks)
    std::string field;        //!< which observable diverged
    std::string detail;       //!< expected-vs-actual rendering

    std::string format() const;
};

/** A production cache and its oracle, stepped in lockstep. */
class LockstepPair
{
  public:
    virtual ~LockstepPair() = default;

    /** Feed access @p i to both sides; report the first divergence. */
    virtual std::optional<Mismatch> step(std::size_t i,
                                         const Access &access) = 0;

    /** End-of-stream checks (full residency sweep). */
    virtual std::optional<Mismatch> finalCheck(std::size_t n)
    {
        (void)n;
        return std::nullopt;
    }

    /** Human-readable pair description for failure messages. */
    virtual std::string describe() const = 0;
};

/** Builds a fresh pair; called once per checker run. */
using PairFactory = std::function<std::unique_ptr<LockstepPair>()>;

/** Runs pairs over access streams. */
class DifferentialChecker
{
  public:
    explicit DifferentialChecker(PairFactory factory)
        : factory_(std::move(factory))
    {
    }

    /**
     * Run a fresh pair over @p stream. Returns the first mismatch,
     * or nullopt if production and oracle agree throughout.
     */
    std::optional<Mismatch>
    run(const std::vector<Access> &stream) const;

    /** Description of a freshly built pair. */
    std::string describePair() const;

  private:
    PairFactory factory_;
};

/** RefGeometry with the same shape as @p geom. */
RefGeometry refGeometryOf(const CacheGeometry &geom);

/** Conventional cache vs reference model (policy must have one). */
PairFactory makeCachePair(const CacheConfig &config);

/**
 * Deliberately broken pair: the production cache runs its configured
 * policy while the oracle models @p oracle_policy. Used to prove the
 * harness catches (and shrinks) replacement bugs.
 */
PairFactory makeBuggyCachePair(const CacheConfig &config,
                               PolicyType oracle_policy);

/**
 * Adaptive cache vs reference Algorithm 1. The production cache is
 * forced to exact counters (the oracle's selector form); every
 * component policy must have a reference model.
 */
PairFactory makeAdaptivePair(const AdaptiveConfig &config);

/** SBAR cache vs reference leader/follower model. */
PairFactory makeSbarPair(const SbarConfig &config);

} // namespace adcache

#endif // ADCACHE_ORACLE_DIFFERENTIAL_HH
