/**
 * @file
 * Reference miss-history models for the differential oracle.
 *
 * RefWindowHistory keeps the literal deque of the last m
 * differentiating-miss bitmasks and counts by scanning it — the
 * production WindowHistory maintains incremental counts over a ring
 * buffer, so the two agree only if both are correct.
 * RefExactCounters is the since-start counter form the 2x theorem is
 * proved for.
 */

#ifndef ADCACHE_ORACLE_REF_HISTORY_HH
#define ADCACHE_ORACLE_REF_HISTORY_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "util/logging.hh"

namespace adcache
{

/** Literal m-deep window of differentiating-miss masks. */
class RefWindowHistory
{
  public:
    RefWindowHistory(unsigned depth, unsigned num_policies)
        : depth_(depth), numPolicies_(num_policies)
    {
        adcache_assert(depth >= 1);
    }

    void
    record(std::uint32_t miss_mask)
    {
        window_.push_back(miss_mask);
        if (window_.size() > depth_)
            window_.pop_front();
    }

    std::uint64_t
    count(unsigned policy) const
    {
        std::uint64_t c = 0;
        for (std::uint32_t mask : window_)
            if (mask & (1u << policy))
                ++c;
        return c;
    }

    /** Policy with the fewest windowed misses; ties to lowest index. */
    unsigned
    best() const
    {
        unsigned best_policy = 0;
        std::uint64_t best_count = count(0);
        for (unsigned p = 1; p < numPolicies_; ++p) {
            const std::uint64_t c = count(p);
            if (c < best_count) {
                best_count = c;
                best_policy = p;
            }
        }
        return best_policy;
    }

  private:
    unsigned depth_;
    unsigned numPolicies_;
    std::deque<std::uint32_t> window_;
};

/** Exact since-start differentiating-miss counters (theory form). */
class RefExactCounters
{
  public:
    explicit RefExactCounters(unsigned num_policies)
        : counts_(num_policies, 0)
    {
    }

    void
    record(std::uint32_t miss_mask)
    {
        for (unsigned p = 0; p < counts_.size(); ++p)
            if (miss_mask & (1u << p))
                ++counts_[p];
    }

    std::uint64_t count(unsigned policy) const
    {
        return counts_.at(policy);
    }

    unsigned
    best() const
    {
        unsigned best_policy = 0;
        for (unsigned p = 1; p < counts_.size(); ++p)
            if (counts_[p] < counts_[best_policy])
                best_policy = p;
        return best_policy;
    }

  private:
    std::vector<std::uint64_t> counts_;
};

} // namespace adcache

#endif // ADCACHE_ORACLE_REF_HISTORY_HH
