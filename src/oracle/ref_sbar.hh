/**
 * @file
 * Reference model of the SBAR-like set-sampling adaptive cache
 * (Sec. 4.7): leader sets run the full adaptive mechanism on
 * reference shadow arrays and a literal miss-history window, and
 * train a plain saturating selection counter; follower sets keep
 * both components' reference replacement metadata on the real blocks
 * and evict whatever the globally-selected policy would evict from
 * the current contents.
 */

#ifndef ADCACHE_ORACLE_REF_SBAR_HH
#define ADCACHE_ORACLE_REF_SBAR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "oracle/ref_cache.hh"
#include "oracle/ref_history.hh"

namespace adcache
{

/** Shape/behaviour parameters of the reference SBAR model. */
struct RefSbarParams
{
    RefGeometry geom;
    PolicyType policyA = PolicyType::LRU;
    PolicyType policyB = PolicyType::LFU;
    unsigned numLeaders = 4;
    unsigned partialTagBits = 0;
    bool xorFoldTags = false;
    unsigned historyDepth = 0;  //!< 0 = associativity
    unsigned pselBits = 10;
};

/** Outcome of one reference to the reference SBAR cache. */
struct RefSbarOutcome
{
    bool hit = false;
    bool evicted = false;
    Addr evictedBlock = 0;
    bool evictedDirty = false;
};

/** The naive SBAR model. */
class RefSbarCache
{
  public:
    explicit RefSbarCache(const RefSbarParams &params);

    RefSbarOutcome access(Addr addr, bool is_write);

    bool isLeader(unsigned set) const;
    unsigned globalChoice() const;
    std::uint64_t selectionFlips() const { return flips_; }

    bool contains(Addr addr) const;
    std::vector<Addr> residentBlocks() const;

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t writebacks() const { return writebacks_; }

    const RefGeometry &geometry() const { return params_.geom; }

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
    };

    unsigned leaderVictim(unsigned set, unsigned winner,
                          const RefOutcome &winner_outcome);

    RefSbarParams params_;
    std::vector<std::vector<Way>> sets_;
    // Both components' reference metadata on every real set.
    std::vector<std::unique_ptr<RefPolicy>> metaA_;
    std::vector<std::unique_ptr<RefPolicy>> metaB_;
    std::unique_ptr<RefCache> shadowA_;
    std::unique_ptr<RefCache> shadowB_;
    std::vector<RefWindowHistory> leaderHistory_;
    std::vector<int> leaderOrdinal_;
    std::vector<unsigned> fallbackPtr_;
    std::uint32_t psel_;
    std::uint32_t pselMax_;
    std::uint64_t flips_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace adcache

#endif // ADCACHE_ORACLE_REF_SBAR_HH
