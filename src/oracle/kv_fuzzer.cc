#include "oracle/kv_fuzzer.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <optional>
#include <span>
#include <sstream>
#include <thread>

#include "util/logging.hh"

namespace adcache
{

const char *
kvFuzzOpName(KvFuzzOpKind kind)
{
    switch (kind) {
      case KvFuzzOpKind::Get:
        return "get";
      case KvFuzzOpKind::Put:
        return "put";
      case KvFuzzOpKind::Fetch:
        return "fetch";
      case KvFuzzOpKind::Erase:
        return "erase";
      case KvFuzzOpKind::Pin:
        return "pin";
      case KvFuzzOpKind::Unpin:
        return "unpin";
      case KvFuzzOpKind::PutTtl:
        return "put_ttl";
      case KvFuzzOpKind::Advance:
        return "advance";
      case KvFuzzOpKind::MGet:
        return "mget";
    }
    return "?";
}

std::string
kvExpectedValue(kv::KvKey key)
{
    return "v" + std::to_string(key);
}

KvConcurrencyFuzzer::KvConcurrencyFuzzer(std::uint64_t seed,
                                         unsigned threads,
                                         std::uint64_t keyspace)
    : threads_(threads), keyspace_(keyspace), rng_(seed)
{
    adcache_assert(threads_ >= 1);
    adcache_assert(keyspace_ >= 1);
}

void
KvConcurrencyFuzzer::emitSegment(KvFuzzSchedule &out,
                                 std::size_t budget)
{
    auto thread = [&] {
        return std::uint8_t(rng_.below(threads_));
    };
    auto key = [&] { return kv::KvKey(rng_.below(keyspace_)); };

    switch (rng_.below(6)) {
      case 0: {
        // Hot-spot hammering: every thread converges on one key so
        // promotion, seqlock validation, and the touch ring all
        // contend on the same bucket.
        const kv::KvKey hot = key();
        out.push_back({thread(), KvFuzzOpKind::Put, hot});
        for (std::size_t i = 1; i < budget; ++i)
            out.push_back({thread(),
                           rng_.chance(0.15) ? KvFuzzOpKind::Put
                                             : KvFuzzOpKind::Get,
                           hot});
        break;
      }
      case 1: {
        // Fill run: a sweep of puts deep enough to force evictions.
        const kv::KvKey base = key();
        for (std::size_t i = 0; i < budget; ++i)
            out.push_back({thread(), KvFuzzOpKind::Put,
                           (base + i) % keyspace_});
        break;
      }
      case 2:
        // Skewed read-mostly mix: the steady-state workload the
        // lock-free path is optimized for, with batched reads mixed
        // in so getMany's grouped epoch windows race the writers.
        for (std::size_t i = 0; i < budget; ++i) {
            const kv::KvKey k = rng_.zipfApprox(keyspace_, 0.99);
            KvFuzzOpKind kind = KvFuzzOpKind::Get;
            if (rng_.chance(0.10))
                kind = KvFuzzOpKind::Put;
            else if (rng_.chance(0.05))
                kind = KvFuzzOpKind::Fetch;
            else if (rng_.chance(0.10))
                kind = KvFuzzOpKind::MGet;
            out.push_back({thread(), kind, k});
        }
        break;
      case 3: {
        // Erase burst racing readers: exercises unlink + epoch
        // reclamation while probes traverse the chains.
        for (std::size_t i = 0; i < budget; ++i)
            out.push_back({thread(),
                           rng_.chance(0.4) ? KvFuzzOpKind::Erase
                                            : KvFuzzOpKind::Get,
                           key()});
        break;
      }
      case 4: {
        // TTL churn: short-lived puts racing clock advances and
        // readers on a small key range, so expiry verdicts land on
        // both the locked and lock-free probe paths mid-flight.
        const kv::KvKey base = key();
        for (std::size_t i = 0; i < budget; ++i) {
            const kv::KvKey k = (base + rng_.below(8)) % keyspace_;
            const double r = rng_.uniform();
            KvFuzzOp op{thread(), KvFuzzOpKind::Get, k};
            if (r < 0.3)
                op.kind = KvFuzzOpKind::PutTtl;
            else if (r < 0.45)
                op.kind = KvFuzzOpKind::Advance;
            else if (r < 0.55)
                op.kind = KvFuzzOpKind::Put;
            out.push_back(op);
        }
        break;
      }
      default: {
        // Pin churn on a small set: pins race victim selection's
        // removal claim; unpins are biased so pins don't accumulate
        // and wedge the cache.
        const kv::KvKey base = key();
        for (std::size_t i = 0; i < budget; ++i) {
            const kv::KvKey k = (base + rng_.below(4)) % keyspace_;
            KvFuzzOpKind kind = KvFuzzOpKind::Get;
            const double r = rng_.uniform();
            if (r < 0.2)
                kind = KvFuzzOpKind::Pin;
            else if (r < 0.5)
                kind = KvFuzzOpKind::Unpin;
            else if (r < 0.7)
                kind = KvFuzzOpKind::Put;
            out.push_back({thread(), kind, k});
        }
        break;
      }
    }
}

KvFuzzSchedule
KvConcurrencyFuzzer::generate(std::size_t length)
{
    KvFuzzSchedule out;
    out.reserve(length);
    while (out.size() < length) {
        const std::size_t remaining = length - out.size();
        const std::size_t budget =
            std::min<std::size_t>(remaining, 8 + rng_.below(48));
        emitSegment(out, budget);
    }
    out.resize(length);
    return out;
}

namespace
{

/** Run one op; @return "" or an identity-violation description. */
std::string
applyOp(kv::AdaptiveKvCache &cache, const KvFuzzOp &op)
{
    switch (op.kind) {
      case KvFuzzOpKind::Get:
        if (auto v = cache.get(op.key)) {
            if (*v != kvExpectedValue(op.key)) {
                std::ostringstream out;
                out << "get(" << op.key << ") returned \"" << *v
                    << "\", expected \"" << kvExpectedValue(op.key)
                    << "\"";
                return out.str();
            }
        }
        break;
      case KvFuzzOpKind::Put:
        cache.put(op.key, kvExpectedValue(op.key));
        break;
      case KvFuzzOpKind::Fetch: {
        const std::string v = cache.fetch(
            op.key, [&] { return kvExpectedValue(op.key); });
        if (v != kvExpectedValue(op.key)) {
            std::ostringstream out;
            out << "fetch(" << op.key << ") returned \"" << v
                << "\", expected \"" << kvExpectedValue(op.key)
                << "\"";
            return out.str();
        }
        break;
      }
      case KvFuzzOpKind::Erase:
        cache.erase(op.key);
        break;
      case KvFuzzOpKind::Pin:
        cache.pin(op.key);
        break;
      case KvFuzzOpKind::Unpin:
        cache.unpin(op.key);
        break;
      case KvFuzzOpKind::PutTtl:
        cache.put(op.key, kvExpectedValue(op.key),
                  /*pinned=*/false, 1 + op.key % 4);
        break;
      case KvFuzzOpKind::Advance:
        cache.clockAdvance();
        break;
      case KvFuzzOpKind::MGet: {
        // A batch over a contiguous window lands members on several
        // shards, so one call exercises the per-shard-group epoch
        // and mutex windows; each returned member gets the same
        // identity check a lone get would.
        std::array<kv::KvKey, 8> keys;
        for (std::size_t i = 0; i < keys.size(); ++i)
            keys[i] = op.key + i;
        std::array<std::optional<std::string>, 8> got;
        cache.getMany(std::span<const kv::KvKey>(keys),
                      got.data());
        for (std::size_t i = 0; i < keys.size(); ++i) {
            if (got[i] && *got[i] != kvExpectedValue(keys[i])) {
                std::ostringstream out;
                out << "mget(" << op.key << ")[" << i
                    << "] returned \"" << *got[i]
                    << "\", expected \""
                    << kvExpectedValue(keys[i]) << "\"";
                return out.str();
            }
        }
        break;
      }
    }
    return "";
}

/**
 * Quiescent-state audit: per-shard accounting identities, residency
 * consistency, and the value-identity of every resident key.
 */
std::string
auditCache(kv::AdaptiveKvCache &cache)
{
    std::ostringstream out;
    std::size_t total_resident = 0;
    std::vector<kv::KvKey> resident;
    for (unsigned s = 0; s < cache.numShards(); ++s) {
        const kv::KvShard &shard = cache.shard(s);
        const kv::KvShardStats st = shard.stats();
        if (st.references != st.hits + st.misses) {
            out << "shard " << s << ": references "
                << st.references << " != hits " << st.hits
                << " + misses " << st.misses;
            return out.str();
        }
        if (st.misses !=
            st.inserts + st.rejected + st.admitRejects) {
            out << "shard " << s << ": misses " << st.misses
                << " != inserts " << st.inserts << " + rejected "
                << st.rejected << " + admit_rejects "
                << st.admitRejects;
            return out.str();
        }
        if (st.getHits > st.gets) {
            out << "shard " << s << ": get_hits " << st.getHits
                << " > gets " << st.gets;
            return out.str();
        }
        const std::uint64_t retained = st.inserts - st.evictions -
                                       st.erases - st.expirations;
        if (shard.size() != retained) {
            out << "shard " << s << ": size " << shard.size()
                << " != inserts " << st.inserts << " - evictions "
                << st.evictions << " - erases " << st.erases
                << " - expirations " << st.expirations;
            return out.str();
        }
        if (shard.pinnedCount() > shard.size()) {
            out << "shard " << s << ": pinned "
                << shard.pinnedCount() << " > size "
                << shard.size();
            return out.str();
        }
        std::vector<kv::KvKey> keys = shard.residentKeys();
        if (keys.size() != shard.size()) {
            out << "shard " << s << ": residentKeys "
                << keys.size() << " != size " << shard.size();
            return out.str();
        }
        std::sort(keys.begin(), keys.end());
        if (std::adjacent_find(keys.begin(), keys.end()) !=
            keys.end()) {
            out << "shard " << s << ": duplicate resident key";
            return out.str();
        }
        for (kv::KvKey k : keys) {
            if (cache.shardOf(k) != s) {
                out << "key " << k << " resident in shard " << s
                    << " but maps to shard " << cache.shardOf(k);
                return out.str();
            }
        }
        total_resident += keys.size();
        resident.insert(resident.end(), keys.begin(), keys.end());
    }
    if (total_resident != cache.size()) {
        out << "sum of shard residencies " << total_resident
            << " != size() " << cache.size();
        return out.str();
    }
    for (kv::KvKey k : resident) {
        auto v = cache.get(k);
        if (!v) {
            // Lazy expiry keeps TTL-lapsed entries physically
            // resident until the next locked contact; a missed get
            // on one of those is correct, not a lost key. contains()
            // is expiry-aware, so it separates the two.
            if (!cache.contains(k))
                continue;
            out << "resident key " << k << " missed on get";
            return out.str();
        }
        if (*v != kvExpectedValue(k)) {
            out << "resident key " << k << " holds \"" << *v
                << "\", expected \"" << kvExpectedValue(k) << "\"";
            return out.str();
        }
    }
    return "";
}

} // namespace

std::string
KvConcurrencyFuzzer::runOnce(const KvFuzzSchedule &sched,
                             const kv::KvConfig &config,
                             unsigned threads)
{
    adcache_assert(threads >= 1);
    kv::AdaptiveKvCache cache(config);

    // Partition the flat schedule into per-thread programs; each
    // thread's ops keep their schedule order.
    std::vector<std::vector<const KvFuzzOp *>> programs(threads);
    for (const KvFuzzOp &op : sched)
        programs[op.thread % threads].push_back(&op);

    std::vector<std::string> errors(threads);
    std::atomic<bool> go{false};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire)) {
            }
            for (const KvFuzzOp *op : programs[t]) {
                std::string err = applyOp(cache, *op);
                if (!err.empty()) {
                    errors[t] = std::move(err);
                    return;
                }
            }
        });
    }
    go.store(true, std::memory_order_release);
    for (auto &th : pool)
        th.join();

    for (unsigned t = 0; t < threads; ++t) {
        if (!errors[t].empty())
            return "thread " + std::to_string(t) + ": " + errors[t];
    }
    return auditCache(cache);
}

std::string
KvConcurrencyFuzzer::runSerial(const KvFuzzSchedule &sched,
                               const kv::KvConfig &config)
{
    kv::AdaptiveKvCache cache(config);
    for (std::size_t i = 0; i < sched.size(); ++i) {
        std::string err = applyOp(cache, sched[i]);
        if (!err.empty()) {
            std::ostringstream out;
            out << "op " << i << " ("
                << kvFuzzOpName(sched[i].kind) << " "
                << sched[i].key << "): " << err;
            return out.str();
        }
    }
    return auditCache(cache);
}

KvFuzzSchedule
KvConcurrencyFuzzer::shrink(
    const std::function<bool(const KvFuzzSchedule &)> &still_fails,
    KvFuzzSchedule failing)
{
    adcache_assert(still_fails(failing));

    // ddmin: try removing chunks at halving granularity until no
    // single-op removal keeps the schedule failing (the same loop as
    // TraceFuzzer::shrink, minus the divergence-point truncation —
    // concurrent failures have no deterministic index).
    std::size_t chunks = 2;
    while (failing.size() >= 2) {
        const std::size_t n = failing.size();
        chunks = std::min(chunks, n);
        const std::size_t chunk_len = (n + chunks - 1) / chunks;

        bool removed = false;
        for (std::size_t c = 0; c < chunks; ++c) {
            const std::size_t lo = c * chunk_len;
            if (lo >= n)
                break;
            const std::size_t hi = std::min(n, lo + chunk_len);
            KvFuzzSchedule candidate;
            candidate.reserve(n - (hi - lo));
            candidate.insert(candidate.end(), failing.begin(),
                             failing.begin() + lo);
            candidate.insert(candidate.end(), failing.begin() + hi,
                             failing.end());
            if (!candidate.empty() && still_fails(candidate)) {
                failing = std::move(candidate);
                chunks = std::max<std::size_t>(2, chunks - 1);
                removed = true;
                break;
            }
        }
        if (!removed) {
            if (chunks >= n)
                break; // single-op granularity exhausted
            chunks = std::min(n, 2 * chunks);
        }
    }
    return failing;
}

std::string
KvConcurrencyFuzzer::toLiteral(const KvFuzzSchedule &sched)
{
    std::ostringstream out;
    out << "// " << sched.size() << " ops\n";
    out << "static const KvFuzzOp kRepro[] = {\n";
    for (const KvFuzzOp &op : sched) {
        out << "    {" << unsigned(op.thread) << ", KvFuzzOpKind::";
        switch (op.kind) {
          case KvFuzzOpKind::Get:
            out << "Get";
            break;
          case KvFuzzOpKind::Put:
            out << "Put";
            break;
          case KvFuzzOpKind::Fetch:
            out << "Fetch";
            break;
          case KvFuzzOpKind::Erase:
            out << "Erase";
            break;
          case KvFuzzOpKind::Pin:
            out << "Pin";
            break;
          case KvFuzzOpKind::Unpin:
            out << "Unpin";
            break;
          case KvFuzzOpKind::PutTtl:
            out << "PutTtl";
            break;
          case KvFuzzOpKind::Advance:
            out << "Advance";
            break;
          case KvFuzzOpKind::MGet:
            out << "MGet";
            break;
        }
        out << ", " << op.key << "ull},\n";
    }
    out << "};\n";
    return out.str();
}

} // namespace adcache
