#include "oracle/kv_lockstep.hh"

#include <algorithm>
#include <sstream>

#include "kv/adaptive_kv_cache.hh"
#include "oracle/ref_adaptive.hh"

namespace adcache
{

namespace
{

constexpr unsigned kvLineBits = 6; // matches KvShadowDir's geometry

std::optional<Mismatch>
diffU64(std::size_t i, const std::string &field, std::uint64_t want,
        std::uint64_t got)
{
    if (want == got)
        return std::nullopt;
    std::ostringstream out;
    out << "expected " << want << ", got " << got;
    return Mismatch{i, field, out.str()};
}

std::optional<Mismatch>
diffBool(std::size_t i, const std::string &field, bool want, bool got)
{
    return diffU64(i, field, want, got);
}

kv::KvConfig
lockstepConfig(const KvLockstepParams &params)
{
    kv::KvConfig config = kv::KvConfig::lockstep(
        params.numBuckets, params.bucketWays, params.partialBits,
        params.xorFold);
    for (unsigned k = 0; k < kv::kvNumComponents; ++k)
        config.components[k] = params.components[k];
    return config;
}

std::vector<PolicyType>
oraclePolicies(const KvLockstepParams &params)
{
    std::vector<PolicyType> policies;
    for (unsigned k = 0; k < kv::kvNumComponents; ++k)
        policies.push_back(params.components[k].evict);
    return policies;
}

std::vector<std::uint8_t>
oracleAdmission(const KvLockstepParams &params)
{
    std::vector<std::uint8_t> admission;
    bool any = false;
    for (unsigned k = 0; k < kv::kvNumComponents; ++k) {
        admission.push_back(params.components[k].admission ? 1 : 0);
        any = any || params.components[k].admission;
    }
    return any ? admission : std::vector<std::uint8_t>{};
}

class KvAdaptivePair : public LockstepPair
{
  public:
    explicit KvAdaptivePair(const KvLockstepParams &params)
        : params_(params), production_(lockstepConfig(params)),
          oracle_(RefGeometry{1u << kvLineBits, params.numBuckets,
                              params.bucketWays},
                  oraclePolicies(params), params.partialBits,
                  params.xorFold, oracleAdmission(params))
    {
    }

    std::optional<Mismatch>
    step(std::size_t i, const Access &access) override
    {
        const kv::KvKey key = access.addr >> kvLineBits;
        const kv::KvOutcome p = production_.reference(key, "v");
        const RefAdaptiveOutcome o =
            oracle_.access(access.addr, access.write);

        if (auto m = diffBool(i, "hit", o.hit, p.hit))
            return m;
        if (auto m = diffBool(i, "evicted", o.evicted, p.evicted))
            return m;
        if (o.evicted) {
            if (auto m = diffU64(i, "victim_key",
                                 o.evictedBlock >> kvLineBits,
                                 p.evictedKey))
                return m;
        }
        if (auto m = diffBool(i, "replaced", o.replaced, p.replaced))
            return m;
        if (o.replaced) {
            if (auto m = diffU64(i, "winner", o.winner, p.winner))
                return m;
        }
        if (auto m = diffBool(i, "fallback", o.fallback, p.fallback))
            return m;
        if (auto m = diffBool(i, "admit_rejected", o.bypassed,
                              p.admitRejected))
            return m;

        const kv::KvShard &shard = production_.shard(0);
        for (unsigned k = 0; k < kv::kvNumComponents; ++k) {
            if (auto m = diffU64(i, componentField("shadow_misses", k),
                                 oracle_.shadowMisses(k),
                                 shard.shadowMisses(k)))
                return m;
        }

        const unsigned set = unsigned(key & (params_.numBuckets - 1));
        for (unsigned k = 0; k < kv::kvNumComponents; ++k) {
            if (auto m = diffU64(i, componentField("counter", k),
                                 oracle_.counterOf(set, k),
                                 shard.historyCount(set, k)))
                return m;
        }

        if (params_.sweepEvery && (i + 1) % params_.sweepEvery == 0)
            return sweep(i);
        return std::nullopt;
    }

    std::optional<Mismatch>
    finalCheck(std::size_t n) override
    {
        return sweep(n);
    }

    std::string
    describe() const override
    {
        std::ostringstream out;
        out << "kv " << production_.describe()
            << " vs RefAdaptiveCache{"
            << kv::kvComponentName(params_.components[0]) << ","
            << kv::kvComponentName(params_.components[1]) << "}";
        return out.str();
    }

  private:
    std::string
    componentField(const char *what, unsigned k) const
    {
        std::ostringstream out;
        out << what << "["
            << kv::kvComponentName(params_.components[k]) << "]";
        return out.str();
    }

    /** Full residency + whole-cache totals. */
    std::optional<Mismatch>
    sweep(std::size_t i)
    {
        const kv::KvShard &shard = production_.shard(0);

        std::vector<kv::KvKey> got = shard.residentKeys();
        std::vector<kv::KvKey> want;
        for (Addr block : oracle_.residentBlocks())
            want.push_back(block >> kvLineBits);
        std::sort(got.begin(), got.end());
        std::sort(want.begin(), want.end());
        if (got != want) {
            std::ostringstream out;
            out << "expected " << want.size() << " resident keys, got "
                << got.size();
            for (std::size_t j = 0;
                 j < want.size() && j < got.size(); ++j) {
                if (want[j] != got[j]) {
                    out << "; first divergence at rank " << j
                        << ": expected key " << want[j] << ", got "
                        << got[j];
                    break;
                }
            }
            return Mismatch{i, "residency", out.str()};
        }

        const kv::KvShardStats &stats = shard.stats();
        if (auto m = diffU64(i, "total_evictions",
                             oracle_.evictions(), stats.evictions))
            return m;
        if (auto m = diffU64(i, "total_fallbacks",
                             oracle_.fallbacks(),
                             stats.fallbackEvictions))
            return m;
        if (auto m = diffU64(i, "total_admit_rejects",
                             oracle_.bypasses(), stats.admitRejects))
            return m;
        for (unsigned k = 0; k < kv::kvNumComponents; ++k) {
            std::uint64_t want_decisions = 0;
            for (unsigned s = 0; s < params_.numBuckets; ++s)
                want_decisions += oracle_.decisionsOf(s, k);
            if (auto m = diffU64(i, componentField("decisions", k),
                                 want_decisions, stats.decisions[k]))
                return m;
        }
        return std::nullopt;
    }

    KvLockstepParams params_;
    kv::AdaptiveKvCache production_;
    RefAdaptiveCache oracle_;
};

} // namespace

PairFactory
makeKvAdaptivePair(const KvLockstepParams &params)
{
    return [params] {
        return std::make_unique<KvAdaptivePair>(params);
    };
}

} // namespace adcache
