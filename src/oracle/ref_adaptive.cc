#include "oracle/ref_adaptive.hh"

#include "util/logging.hh"

namespace adcache
{

RefAdaptiveCache::RefAdaptiveCache(
    const RefGeometry &geom, const std::vector<PolicyType> &policies,
    unsigned partial_bits, bool xor_fold,
    const std::vector<std::uint8_t> &admission)
    : geom_(geom)
{
    adcache_assert(policies.size() >= 2);
    adcache_assert(admission.empty() ||
                   admission.size() == policies.size());
    for (std::uint8_t f : admission) {
        if (f) {
            admission_ = std::make_unique<RefTinyLfu>(
                adapt::SketchParams::forGeometry(geom.numSets,
                                                 geom.assoc));
            break;
        }
    }
    for (std::size_t k = 0; k < policies.size(); ++k) {
        const bool admit = k < admission.size() && admission[k];
        shadows_.push_back(std::make_unique<RefCache>(
            geom, policies[k], partial_bits, xor_fold,
            admit ? admission_.get() : nullptr));
    }
    sets_.assign(geom.numSets, std::vector<Way>(geom.assoc));
    counters_.assign(geom.numSets,
                     RefExactCounters(unsigned(policies.size())));
    decisions_.assign(geom.numSets,
                      std::vector<std::uint64_t>(policies.size(), 0));
    fallbackPtr_.assign(geom.numSets, 0);
}

std::uint64_t
RefAdaptiveCache::shadowMisses(unsigned k) const
{
    return shadows_.at(k)->misses();
}

std::uint64_t
RefAdaptiveCache::counterOf(unsigned set, unsigned k) const
{
    return counters_.at(set).count(k);
}

std::uint64_t
RefAdaptiveCache::decisionsOf(unsigned set, unsigned k) const
{
    return decisions_.at(set).at(k);
}

bool
RefAdaptiveCache::contains(Addr addr) const
{
    const unsigned set = geom_.setOf(addr);
    const Addr tag = geom_.tagOf(addr);
    for (const Way &w : sets_[set])
        if (w.valid && w.tag == tag)
            return true;
    return false;
}

std::vector<Addr>
RefAdaptiveCache::residentBlocks() const
{
    std::vector<Addr> blocks;
    for (unsigned s = 0; s < geom_.numSets; ++s)
        for (const Way &w : sets_[s])
            if (w.valid)
                blocks.push_back(geom_.blockAddr(s, w.tag));
    return blocks;
}

unsigned
RefAdaptiveCache::chooseVictim(unsigned set, unsigned winner,
                               const RefOutcome &winner_outcome,
                               bool *used_fallback)
{
    RefCache &shadow = *shadows_[winner];
    std::vector<Way> &ways = sets_[set];

    // Case 1: the imitated component displaced a block this access;
    // if a resident block folds to that tag, evict it (lowest way).
    if (winner_outcome.evicted) {
        for (unsigned w = 0; w < geom_.assoc; ++w)
            if (ways[w].valid &&
                shadow.foldTag(ways[w].tag) == winner_outcome.evictedTag)
                return w;
    }

    // Case 2: evict a resident block outside the imitated
    // component's (shadow) contents.
    for (unsigned w = 0; w < geom_.assoc; ++w)
        if (ways[w].valid &&
            !shadow.containsTag(set, shadow.foldTag(ways[w].tag)))
            return w;

    // Case 3: aliasing defeated both searches — rotate through the
    // ways, as the production cache documents for its arbitrary pick.
    *used_fallback = true;
    ++fallbacks_;
    const unsigned w = fallbackPtr_[set];
    fallbackPtr_[set] = (w + 1) % geom_.assoc;
    return w;
}

RefAdaptiveOutcome
RefAdaptiveCache::access(Addr addr, bool is_write)
{
    RefAdaptiveOutcome out;
    const unsigned set = geom_.setOf(addr);
    const Addr tag = geom_.tagOf(addr);
    const auto num_policies = unsigned(shadows_.size());

    // The admission filter sees every candidate before any component
    // simulation consults it (same order as the production cache).
    if (admission_)
        admission_->touch(shadows_[0]->foldTag(tag));

    // Every reference updates every component simulation.
    std::vector<RefOutcome> shadow_out(num_policies);
    std::uint32_t miss_mask = 0;
    for (unsigned k = 0; k < num_policies; ++k) {
        shadow_out[k] = shadows_[k]->access(addr, false);
        if (!shadow_out[k].hit)
            miss_mask |= 1u << k;
    }

    // Only differentiating misses (proper non-empty subsets) train
    // the selector.
    const std::uint32_t all = (1u << num_policies) - 1;
    if (miss_mask != 0 && miss_mask != all)
        counters_[set].record(miss_mask);

    std::vector<Way> &ways = sets_[set];
    for (Way &w : ways) {
        if (w.valid && w.tag == tag) {
            ++hits_;
            out.hit = true;
            if (is_write)
                w.dirty = true;
            return out;
        }
    }

    ++misses_;

    unsigned fill = geom_.assoc;
    for (unsigned w = 0; w < geom_.assoc; ++w) {
        if (!ways[w].valid) {
            fill = w;
            break;
        }
    }
    if (fill == geom_.assoc) {
        const unsigned winner = counters_[set].best();
        out.replaced = true;
        out.winner = winner;
        ++decisions_[set][winner];

        // Imitate the winner's admission verdict: a bypass is still a
        // counted decision, but nothing is evicted or filled.
        if (shadow_out[winner].bypassed) {
            ++bypasses_;
            out.bypassed = true;
            return out;
        }

        fill = chooseVictim(set, winner, shadow_out[winner],
                            &out.fallback);

        out.evicted = true;
        out.evictedBlock = geom_.blockAddr(set, ways[fill].tag);
        out.evictedDirty = ways[fill].dirty;
        ++evictions_;
        if (ways[fill].dirty)
            ++writebacks_;
    }

    ways[fill] = Way{tag, true, is_write};
    return out;
}

} // namespace adcache
