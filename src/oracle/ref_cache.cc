#include "oracle/ref_cache.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace adcache
{

RefCache::RefCache(const RefGeometry &geom, PolicyType policy,
                   unsigned partial_bits, bool xor_fold,
                   const RefTinyLfu *admission)
    : geom_(geom), policy_(policy), partialBits_(partial_bits),
      xorFold_(xor_fold), admission_(admission)
{
    adcache_assert(refPolicySupported(policy));
    sets_.assign(geom.numSets, std::vector<Way>(geom.assoc));
    policies_.reserve(geom.numSets);
    if (policy == PolicyType::CmsLfu) {
        // All sets share one frequency sketch (the production
        // CmsLfuSets layout); each per-set model composes its own
        // set index into the sketch keys.
        const unsigned set_bits =
            geom.numSets <= 1 ? 0 : floorLog2(geom.numSets);
        cmsSketch_ = std::make_unique<RefCountMinSketch>(
            adapt::SketchParams::forGeometry(geom.numSets,
                                             geom.assoc));
        for (unsigned s = 0; s < geom.numSets; ++s)
            policies_.push_back(makeRefCmsLfuPolicy(
                geom.assoc, s, set_bits, cmsSketch_.get()));
    } else {
        for (unsigned s = 0; s < geom.numSets; ++s)
            policies_.push_back(makeRefPolicy(policy, geom.assoc));
    }
}

Addr
RefCache::foldTag(Addr full_tag) const
{
    if (partialBits_ == 0)
        return full_tag;
    if (xorFold_)
        return xorFold(full_tag, partialBits_);
    return full_tag & lowMask(partialBits_);
}

bool
RefCache::containsTag(unsigned set, Addr stored_tag) const
{
    for (const Way &w : sets_.at(set))
        if (w.valid && w.tag == stored_tag)
            return true;
    return false;
}

bool
RefCache::contains(Addr addr) const
{
    return containsTag(geom_.setOf(addr),
                       foldTag(geom_.tagOf(addr)));
}

std::vector<Addr>
RefCache::residentBlocks() const
{
    adcache_assert(partialBits_ == 0);
    std::vector<Addr> blocks;
    for (unsigned s = 0; s < geom_.numSets; ++s)
        for (const Way &w : sets_[s])
            if (w.valid)
                blocks.push_back(geom_.blockAddr(s, w.tag));
    return blocks;
}

RefOutcome
RefCache::access(Addr addr, bool is_write)
{
    RefOutcome out;
    const unsigned set = geom_.setOf(addr);
    const Addr tag = foldTag(geom_.tagOf(addr));
    std::vector<Way> &ways = sets_[set];
    RefPolicy &policy = *policies_[set];

    for (unsigned w = 0; w < geom_.assoc; ++w) {
        if (ways[w].valid && ways[w].tag == tag) {
            // With partial tags this can be an aliased false
            // positive; the reference proceeds as a hit exactly like
            // the production shadow (Sec. 3.1).
            ++hits_;
            out.hit = true;
            out.way = w;
            policy.onHitTag(w, tag);
            if (is_write)
                ways[w].dirty = true;
            return out;
        }
    }

    ++misses_;

    unsigned fill = geom_.assoc;
    for (unsigned w = 0; w < geom_.assoc; ++w) {
        if (!ways[w].valid) {
            fill = w;
            break;
        }
    }
    if (fill == geom_.assoc) {
        // The admission filter sees the candidate against the way the
        // policy would evict; a refused candidate leaves the set (and
        // the policy metadata) untouched.
        if (admission_ != nullptr) {
            const unsigned vw = policy.victim();
            if (!admission_->admit(tag, ways[vw].tag)) {
                out.bypassed = true;
                return out;
            }
        }
        fill = policy.victim();
        out.evicted = true;
        out.evictedTag = ways[fill].tag;
        out.evictedDirty = ways[fill].dirty;
        ++evictions_;
        if (ways[fill].dirty)
            ++writebacks_;
        policy.onInvalidate(fill);
    }

    ways[fill] = Way{tag, true, is_write};
    policy.onFillTag(fill, tag);
    out.way = fill;
    return out;
}

} // namespace adcache
