#include "oracle/ref_sbar.hh"

#include "util/logging.hh"

namespace adcache
{

RefSbarCache::RefSbarCache(const RefSbarParams &params)
    : params_(params)
{
    const RefGeometry &g = params.geom;
    adcache_assert(params.numLeaders >= 1 &&
                   params.numLeaders <= g.numSets);

    sets_.assign(g.numSets, std::vector<Way>(g.assoc));
    metaA_.reserve(g.numSets);
    metaB_.reserve(g.numSets);
    for (unsigned s = 0; s < g.numSets; ++s) {
        metaA_.push_back(makeRefPolicy(params.policyA, g.assoc));
        metaB_.push_back(makeRefPolicy(params.policyB, g.assoc));
    }

    shadowA_ = std::make_unique<RefCache>(g, params.policyA,
                                          params.partialTagBits,
                                          params.xorFoldTags);
    shadowB_ = std::make_unique<RefCache>(g, params.policyB,
                                          params.partialTagBits,
                                          params.xorFoldTags);

    const unsigned spacing = g.numSets / params.numLeaders;
    adcache_assert(spacing >= 1);
    const unsigned depth =
        params.historyDepth != 0 ? params.historyDepth : g.assoc;
    leaderOrdinal_.assign(g.numSets, -1);
    unsigned ordinal = 0;
    for (unsigned s = 0; s < g.numSets; s += spacing) {
        if (ordinal >= params.numLeaders)
            break;
        leaderOrdinal_[s] = int(ordinal++);
        leaderHistory_.emplace_back(depth, 2);
    }
    fallbackPtr_.assign(g.numSets, 0);

    pselMax_ = (1u << params.pselBits) - 1;
    psel_ = (1u << params.pselBits) / 2;
}

bool
RefSbarCache::isLeader(unsigned set) const
{
    return leaderOrdinal_.at(set) >= 0;
}

unsigned
RefSbarCache::globalChoice() const
{
    return psel_ > pselMax_ / 2 ? 1 : 0;
}

bool
RefSbarCache::contains(Addr addr) const
{
    const unsigned set = params_.geom.setOf(addr);
    const Addr tag = params_.geom.tagOf(addr);
    for (const Way &w : sets_[set])
        if (w.valid && w.tag == tag)
            return true;
    return false;
}

std::vector<Addr>
RefSbarCache::residentBlocks() const
{
    std::vector<Addr> blocks;
    for (unsigned s = 0; s < params_.geom.numSets; ++s)
        for (const Way &w : sets_[s])
            if (w.valid)
                blocks.push_back(params_.geom.blockAddr(s, w.tag));
    return blocks;
}

unsigned
RefSbarCache::leaderVictim(unsigned set, unsigned winner,
                           const RefOutcome &winner_outcome)
{
    RefCache &shadow = winner == 0 ? *shadowA_ : *shadowB_;
    std::vector<Way> &ways = sets_[set];

    if (winner_outcome.evicted) {
        for (unsigned w = 0; w < params_.geom.assoc; ++w)
            if (ways[w].valid &&
                shadow.foldTag(ways[w].tag) == winner_outcome.evictedTag)
                return w;
    }
    for (unsigned w = 0; w < params_.geom.assoc; ++w)
        if (ways[w].valid &&
            !shadow.containsTag(set, shadow.foldTag(ways[w].tag)))
            return w;
    const unsigned w = fallbackPtr_[set];
    fallbackPtr_[set] = (w + 1) % params_.geom.assoc;
    return w;
}

RefSbarOutcome
RefSbarCache::access(Addr addr, bool is_write)
{
    RefSbarOutcome out;
    const RefGeometry &g = params_.geom;
    const unsigned set = g.setOf(addr);
    const Addr tag = g.tagOf(addr);
    const int ordinal = leaderOrdinal_[set];

    RefOutcome out_a, out_b;
    if (ordinal >= 0) {
        out_a = shadowA_->access(addr, false);
        out_b = shadowB_->access(addr, false);
        if (out_a.hit != out_b.hit) {
            leaderHistory_[ordinal].record(out_a.hit ? 0b10 : 0b01);
            const unsigned before = globalChoice();
            if (!out_a.hit) {
                if (psel_ < pselMax_)
                    ++psel_;  // A missing -> drift toward B
            } else {
                if (psel_ > 0)
                    --psel_;
            }
            if (globalChoice() != before)
                ++flips_;
        }
    }

    std::vector<Way> &ways = sets_[set];
    for (unsigned w = 0; w < g.assoc; ++w) {
        if (ways[w].valid && ways[w].tag == tag) {
            ++hits_;
            out.hit = true;
            metaA_[set]->onHit(w);
            metaB_[set]->onHit(w);
            if (is_write)
                ways[w].dirty = true;
            return out;
        }
    }

    ++misses_;

    unsigned fill = g.assoc;
    for (unsigned w = 0; w < g.assoc; ++w) {
        if (!ways[w].valid) {
            fill = w;
            break;
        }
    }
    if (fill == g.assoc) {
        if (ordinal >= 0) {
            const unsigned winner = leaderHistory_[ordinal].best();
            fill = leaderVictim(set, winner,
                                winner == 0 ? out_a : out_b);
        } else {
            // Follower: run the selected component on whatever blocks
            // are currently resident.
            fill = globalChoice() == 0 ? metaA_[set]->victim()
                                       : metaB_[set]->victim();
        }
        out.evicted = true;
        out.evictedBlock = g.blockAddr(set, ways[fill].tag);
        out.evictedDirty = ways[fill].dirty;
        ++evictions_;
        if (ways[fill].dirty)
            ++writebacks_;
        metaA_[set]->onInvalidate(fill);
        metaB_[set]->onInvalidate(fill);
    }

    ways[fill] = Way{tag, true, is_write};
    metaA_[set]->onFill(fill);
    metaB_[set]->onFill(fill);
    return out;
}

} // namespace adcache
