#include "oracle/ref_sketch.hh"

#include "util/logging.hh"

namespace adcache
{

RefCountMinSketch::RefCountMinSketch(const adapt::SketchParams &params)
    : params_(params)
{
    adcache_assert(params_.width >= 2 && params_.rows >= 1);
    rows_.assign(params_.rows,
                 std::vector<std::uint32_t>(params_.width, 0));
}

void
RefCountMinSketch::add(std::uint64_t key)
{
    for (unsigned r = 0; r < params_.rows; ++r) {
        const std::uint64_t h =
            adapt::sketchRowHash(key, r, params_.seed);
        std::uint32_t &cell = rows_[r][h % params_.width];
        if (cell < params_.counterMax)
            ++cell;
    }
    ++adds_;
    if (adds_ % params_.decayEvery == 0) {
        for (auto &row : rows_)
            for (std::uint32_t &cell : row)
                cell = cell / 2;
        ++decays_;
    }
}

std::uint32_t
RefCountMinSketch::estimate(std::uint64_t key) const
{
    std::uint32_t est = params_.counterMax;
    for (unsigned r = 0; r < params_.rows; ++r) {
        const std::uint64_t h =
            adapt::sketchRowHash(key, r, params_.seed);
        const std::uint32_t cell = rows_[r][h % params_.width];
        if (cell < est)
            est = cell;
    }
    return est;
}

namespace
{

/**
 * One set's CMS-LFU metadata: the sketch key recorded at fill time,
 * a per-set fill clock for the age tie-break, and the shared sketch.
 * Mirrors CmsLfuSets exactly: fills record and count the entry key,
 * hits re-derive the key from the referenced tag and count it, and
 * victim() scans for (least estimate, then oldest fill, then lowest
 * way).
 */
class RefCmsLfuPolicy : public RefPolicy
{
  public:
    RefCmsLfuPolicy(unsigned assoc, unsigned set, unsigned set_bits,
                    RefCountMinSketch *sketch)
        : assoc_(assoc), set_(set), setBits_(set_bits),
          sketch_(sketch), key_(assoc, 0), fillSeq_(assoc, 0)
    {
        adcache_assert(assoc >= 1 && sketch != nullptr);
    }

    // CMS-LFU derives its sketch keys from the referenced tag; the
    // tag-free events have no meaning for it (the production policy
    // panics the same way).
    void
    onFill(unsigned)  override
    {
        panic("RefCmsLfuPolicy requires tag-carrying fill events");
    }

    void
    onHit(unsigned) override
    {
        panic("RefCmsLfuPolicy requires tag-carrying hit events");
    }

    void
    onFillTag(unsigned way, Addr stored_tag) override
    {
        const std::uint64_t k =
            adapt::sketchEntryKey(stored_tag, set_, setBits_);
        key_.at(way) = k;
        fillSeq_.at(way) = ++clock_;
        sketch_->add(k);
    }

    void
    onHitTag(unsigned way, Addr stored_tag) override
    {
        (void)way;
        sketch_->add(
            adapt::sketchEntryKey(stored_tag, set_, setBits_));
    }

    void
    onInvalidate(unsigned way) override
    {
        key_.at(way) = 0;
        fillSeq_.at(way) = 0;
    }

    unsigned
    victim() const override
    {
        unsigned best = 0;
        std::uint32_t best_est = sketch_->estimate(key_[0]);
        for (unsigned w = 1; w < assoc_; ++w) {
            const std::uint32_t est = sketch_->estimate(key_[w]);
            if (est < best_est ||
                (est == best_est && fillSeq_[w] < fillSeq_[best])) {
                best = w;
                best_est = est;
            }
        }
        return best;
    }

    unsigned assoc() const override { return assoc_; }

  private:
    unsigned assoc_;
    unsigned set_;
    unsigned setBits_;
    RefCountMinSketch *sketch_; // shared by all sets; not owned
    std::vector<std::uint64_t> key_;
    std::vector<std::uint64_t> fillSeq_;
    std::uint64_t clock_ = 0;
};

} // namespace

std::unique_ptr<RefPolicy>
makeRefCmsLfuPolicy(unsigned assoc, unsigned set, unsigned set_bits,
                    RefCountMinSketch *sketch)
{
    return std::make_unique<RefCmsLfuPolicy>(assoc, set, set_bits,
                                             sketch);
}

} // namespace adcache
