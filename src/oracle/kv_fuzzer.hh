/**
 * @file
 * Seeded concurrency fuzzing for the kv cache's lock-free read path
 * (the kv twin of oracle/trace_fuzzer).
 *
 * A schedule is a flat list of (thread, op, key) records; each
 * worker thread executes its own records in schedule order, so the
 * schedule fixes the program of every thread while the hardware
 * supplies the interleaving. Values are derived from keys
 * (expectedValue), which turns every observed hit into an identity
 * check: a probe that returns another key's value — the seqlock/ABA
 * failure mode — is caught at the moment it happens.
 *
 * After the threads join, runOnce audits the quiescent cache: the
 * per-shard accounting identities (references = hits + misses,
 * misses = inserts + rejected, size = inserts - evictions - erases
 * - expirations) and residency consistency (per-shard key lists are
 * duplicate-free, shard-local, and sum to size()). TTL ops (PutTtl /
 * Advance) race lazy expiry against the lock-free probes; the audit
 * tolerates TTL-lapsed entries that are physically resident but
 * logically absent.
 *
 * A failing schedule shrinks by the same ddmin chunk-removal loop
 * the trace fuzzer uses; because thread interleaving is
 * nondeterministic, the predicate re-runs each candidate several
 * times and keeps it only if some run still fails. toLiteral()
 * renders the shrunken schedule as a replayable C++ initializer
 * (runSerial replays it single-threaded as the canonical witness).
 */

#ifndef ADCACHE_ORACLE_KV_FUZZER_HH
#define ADCACHE_ORACLE_KV_FUZZER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "kv/adaptive_kv_cache.hh"
#include "util/rng.hh"

namespace adcache
{

/** One fuzzed kv operation. */
enum class KvFuzzOpKind : std::uint8_t
{
    Get,
    Put,
    Fetch,
    Erase,
    Pin,
    Unpin,
    /** put with a short key-derived TTL (1 + key % 4 ticks). */
    PutTtl,
    /** Advance the cache's logical clock one tick (key unused) —
     *  racing expiry against readers is the point. */
    Advance,
    /** getMany over the window [key, key + 8): the shard-grouped
     *  batch path racing writers, with the identity check applied
     *  to every returned member. */
    MGet,
};

/** Printable op-kind name ("get", "put", ...). */
const char *kvFuzzOpName(KvFuzzOpKind kind);

struct KvFuzzOp
{
    std::uint8_t thread = 0;
    KvFuzzOpKind kind = KvFuzzOpKind::Get;
    kv::KvKey key = 0;
};

using KvFuzzSchedule = std::vector<KvFuzzOp>;

/** The value every writer stores for @p key (identity oracle). */
std::string kvExpectedValue(kv::KvKey key);

/** Seeded schedule generator + executor (see file comment). */
class KvConcurrencyFuzzer
{
  public:
    /**
     * @param threads  worker threads per run (2-4 is the motif).
     * @param keyspace keys are drawn from [0, keyspace); sized a
     *                 small multiple of capacity so runs actually
     *                 evict.
     */
    KvConcurrencyFuzzer(std::uint64_t seed, unsigned threads,
                        std::uint64_t keyspace);

    /** Generate a schedule of @p length records. */
    KvFuzzSchedule generate(std::size_t length);

    unsigned threads() const { return threads_; }

    /**
     * Execute @p sched concurrently against a fresh cache built
     * from @p config and audit it (see file comment).
     * @return "" on success, else a violation description.
     */
    static std::string runOnce(const KvFuzzSchedule &sched,
                               const kv::KvConfig &config,
                               unsigned threads);

    /**
     * Replay @p sched single-threaded in schedule order — the
     * canonical serial witness for a shrunken failure.
     * @return "" on success, else a violation description.
     */
    static std::string runSerial(const KvFuzzSchedule &sched,
                                 const kv::KvConfig &config);

    /**
     * ddmin-shrink @p failing while @p still_fails holds (the
     * caller's predicate should re-run the schedule a few times to
     * ride out nondeterministic interleavings).
     */
    static KvFuzzSchedule
    shrink(const std::function<bool(const KvFuzzSchedule &)>
               &still_fails,
           KvFuzzSchedule failing);

    /** Render @p sched as a replayable C++ initializer literal. */
    static std::string toLiteral(const KvFuzzSchedule &sched);

  private:
    void emitSegment(KvFuzzSchedule &out, std::size_t budget);

    unsigned threads_;
    std::uint64_t keyspace_;
    Rng rng_;
};

} // namespace adcache

#endif // ADCACHE_ORACLE_KV_FUZZER_HH
