/**
 * @file
 * Reference set-associative tag cache for the differential oracle.
 *
 * A RefCache is the naive model of one cache-shaped structure: per
 * set, a plain vector of (tag, valid, dirty) ways plus one RefPolicy.
 * It serves two roles:
 *
 *  - with full tags and dirty tracking it is the oracle for the
 *    conventional Cache;
 *  - with partial (folded) tags it is the reference shadow array the
 *    reference adaptive/SBAR models consult, mirroring the production
 *    ShadowCache semantics (false-positive partial-tag matches count
 *    as hits, Sec. 3.1).
 *
 * Everything is computed by linear scan; no stamps, rings, or
 * incremental counters.
 */

#ifndef ADCACHE_ORACLE_REF_CACHE_HH
#define ADCACHE_ORACLE_REF_CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "oracle/ref_policy.hh"
#include "oracle/ref_sketch.hh"
#include "util/types.hh"

namespace adcache
{

/**
 * Naive address decomposition, independent of the production
 * CacheGeometry (same spec: low offset bits, then index bits, the
 * rest is the tag).
 */
struct RefGeometry
{
    unsigned lineSize = 64;
    unsigned numSets = 16;
    unsigned assoc = 4;

    unsigned
    offsetBits() const
    {
        unsigned b = 0;
        while ((1u << b) < lineSize)
            ++b;
        return b;
    }

    unsigned
    indexBits() const
    {
        unsigned b = 0;
        while ((1u << b) < numSets)
            ++b;
        return b;
    }

    unsigned setOf(Addr a) const
    {
        return unsigned((a >> offsetBits()) % numSets);
    }

    Addr tagOf(Addr a) const
    {
        return a >> (offsetBits() + indexBits());
    }

    Addr
    blockAddr(unsigned set, Addr full_tag) const
    {
        return (full_tag << (offsetBits() + indexBits())) |
               (Addr(set) << offsetBits());
    }
};

/** Outcome of one reference presented to a RefCache. */
struct RefOutcome
{
    bool hit = false;
    bool evicted = false;      //!< a valid block was displaced
    Addr evictedTag = 0;       //!< stored (possibly folded) tag
    bool evictedDirty = false;
    unsigned way = 0;          //!< way hit or filled
    bool bypassed = false;     //!< admission refused a full-set fill
};

/** The naive reference cache / reference shadow array. */
class RefCache
{
  public:
    /**
     * @param geom         shape shared with the checked structure.
     * @param policy       replacement policy (must be supported by
     *                     makeRefPolicy).
     * @param partial_bits 0 = full tags, else stored tag width.
     * @param xor_fold     fold by XOR of bit groups, not low bits.
     * @param admission    optional TinyLFU filter consulted on
     *                     full-set misses (stored-tag keys); not
     *                     owned, and not touch()ed here — the owner
     *                     touches it once per reference, mirroring
     *                     the production ShadowCache contract.
     */
    RefCache(const RefGeometry &geom, PolicyType policy,
             unsigned partial_bits = 0, bool xor_fold = false,
             const RefTinyLfu *admission = nullptr);

    /** Present one reference; @p is_write only affects dirty bits. */
    RefOutcome access(Addr addr, bool is_write);

    /** Fold a full tag into this cache's stored-tag domain. */
    Addr foldTag(Addr full_tag) const;

    /** Membership of @p stored_tag in @p set. */
    bool containsTag(unsigned set, Addr stored_tag) const;

    /** Membership of the block containing @p addr. */
    bool contains(Addr addr) const;

    /** All resident block addresses (full-tag caches only). */
    std::vector<Addr> residentBlocks() const;

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t writebacks() const { return writebacks_; }

    const RefGeometry &geometry() const { return geom_; }
    PolicyType policyType() const { return policy_; }

  private:
    friend class RefAdaptiveCache;
    friend class RefSbarCache;

    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
    };

    RefGeometry geom_;
    PolicyType policy_;
    unsigned partialBits_;
    bool xorFold_;
    const RefTinyLfu *admission_;
    /** Shared CMS-LFU sketch; null for every other policy. Declared
     *  before policies_, which hold pointers into it. */
    std::unique_ptr<RefCountMinSketch> cmsSketch_;
    std::vector<std::vector<Way>> sets_;
    std::vector<std::unique_ptr<RefPolicy>> policies_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace adcache

#endif // ADCACHE_ORACLE_REF_CACHE_HH
