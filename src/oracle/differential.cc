#include "oracle/differential.hh"

#include <sstream>

#include "oracle/ref_adaptive.hh"
#include "oracle/ref_sbar.hh"
#include "util/logging.hh"

namespace adcache
{

namespace
{

/** How often the full residency sweep runs. */
constexpr std::size_t kSweepInterval = 512;

std::string
hexAddr(Addr a)
{
    std::ostringstream out;
    out << "0x" << std::hex << a;
    return out.str();
}

Mismatch
diff(std::size_t index, const std::string &field, std::uint64_t want,
     std::uint64_t got)
{
    Mismatch m;
    m.index = index;
    m.field = field;
    std::ostringstream out;
    out << "oracle=" << want << " production=" << got;
    m.detail = out.str();
    return m;
}

Mismatch
diffAddr(std::size_t index, const std::string &field, Addr want,
         Addr got)
{
    Mismatch m;
    m.index = index;
    m.field = field;
    m.detail = "oracle=" + hexAddr(want) + " production=" +
               hexAddr(got);
    return m;
}

/**
 * Residency sweep helper: every oracle-resident block must be
 * resident in the production cache. (The other containment direction
 * is implied: both sides hold exactly capacity blocks once warm, and
 * any production-only block would mis-hit later.)
 */
template <typename ProductionT>
std::optional<Mismatch>
sweepResidency(std::size_t index, const ProductionT &production,
               const std::vector<Addr> &oracle_blocks)
{
    for (Addr block : oracle_blocks) {
        if (!production.contains(block)) {
            Mismatch m;
            m.index = index;
            m.field = "residency";
            m.detail = "oracle-resident block " + hexAddr(block) +
                       " missing from production cache";
            return m;
        }
    }
    return std::nullopt;
}

// ---------------------------------------------------------------- //

/** Conventional Cache vs RefCache (full tags, dirty tracked). */
class CachePair : public LockstepPair
{
  public:
    CachePair(const CacheConfig &config, PolicyType oracle_policy)
        : production_(config),
          oracle_(refGeometryOf(config.geometry()), oracle_policy)
    {
    }

    std::optional<Mismatch>
    step(std::size_t i, const Access &access) override
    {
        const AccessResult r =
            production_.access(access.addr, access.write);
        const RefOutcome o = oracle_.access(access.addr, access.write);

        if (r.hit != o.hit)
            return diff(i, "hit", o.hit, r.hit);

        const bool want_wb = o.evicted && o.evictedDirty;
        if (r.writeback != want_wb)
            return diff(i, "writeback", want_wb, r.writeback);
        if (want_wb) {
            const unsigned set =
                oracle_.geometry().setOf(access.addr);
            const Addr want =
                oracle_.geometry().blockAddr(set, o.evictedTag);
            if (r.writebackAddr != want)
                return diffAddr(i, "writeback_addr", want,
                                r.writebackAddr);
        }

        const CacheStats &s = production_.stats();
        if (s.hits != oracle_.hits())
            return diff(i, "stats.hits", oracle_.hits(), s.hits);
        if (s.misses != oracle_.misses())
            return diff(i, "stats.misses", oracle_.misses(), s.misses);
        if (s.evictions != oracle_.evictions())
            return diff(i, "stats.evictions", oracle_.evictions(),
                        s.evictions);
        if (s.writebacks != oracle_.writebacks())
            return diff(i, "stats.writebacks", oracle_.writebacks(),
                        s.writebacks);

        if ((i + 1) % kSweepInterval == 0)
            return sweepResidency(i, production_,
                                  oracle_.residentBlocks());
        return std::nullopt;
    }

    std::optional<Mismatch>
    finalCheck(std::size_t n) override
    {
        return sweepResidency(n, production_,
                              oracle_.residentBlocks());
    }

    std::string
    describe() const override
    {
        return "Cache{" + production_.describe() + "} vs Ref[" +
               policyName(oracle_.policyType()) + "]";
    }

  private:
    Cache production_;
    RefCache oracle_;
};

// ---------------------------------------------------------------- //

/** AdaptiveCache (exact counters) vs RefAdaptiveCache. */
class AdaptivePair : public LockstepPair
{
  public:
    explicit AdaptivePair(const AdaptiveConfig &config)
        : production_(withExactCounters(config)),
          oracle_(refGeometryOf(config.geometry()), config.policies,
                  config.partialTagBits, config.xorFoldTags,
                  config.admission)
    {
        for (PolicyType p : config.policies)
            adcache_assert(refPolicySupported(p));
    }

    std::optional<Mismatch>
    step(std::size_t i, const Access &access) override
    {
        const AccessResult r =
            production_.access(access.addr, access.write);
        const RefAdaptiveOutcome o =
            oracle_.access(access.addr, access.write);

        if (r.hit != o.hit)
            return diff(i, "hit", o.hit, r.hit);

        const bool want_wb = o.evicted && o.evictedDirty;
        if (r.writeback != want_wb)
            return diff(i, "writeback", want_wb, r.writeback);
        if (want_wb && r.writebackAddr != o.evictedBlock)
            return diffAddr(i, "writeback_addr", o.evictedBlock,
                            r.writebackAddr);

        for (unsigned k = 0; k < oracle_.numPolicies(); ++k) {
            if (production_.shadowMisses(k) != oracle_.shadowMisses(k))
                return diff(i,
                            std::string("shadow_misses[") +
                                policyName(
                                    production_.componentPolicy(k)) +
                                "]",
                            oracle_.shadowMisses(k),
                            production_.shadowMisses(k));
        }

        if (production_.fallbackEvictions() != oracle_.fallbacks())
            return diff(i, "fallback_evictions", oracle_.fallbacks(),
                        production_.fallbackEvictions());

        if (production_.admissionBypasses() != oracle_.bypasses())
            return diff(i, "admission_bypasses", oracle_.bypasses(),
                        production_.admissionBypasses());

        const CacheStats &s = production_.stats();
        if (s.hits != oracle_.hits())
            return diff(i, "stats.hits", oracle_.hits(), s.hits);
        if (s.misses != oracle_.misses())
            return diff(i, "stats.misses", oracle_.misses(), s.misses);
        if (s.evictions != oracle_.evictions())
            return diff(i, "stats.evictions", oracle_.evictions(),
                        s.evictions);
        if (s.writebacks != oracle_.writebacks())
            return diff(i, "stats.writebacks", oracle_.writebacks(),
                        s.writebacks);

        // Selector decisions of the accessed set: which component the
        // replacement imitated, cumulatively.
        const unsigned set = oracle_.geometry().setOf(access.addr);
        const auto &decisions = production_.decisionsFor(set);
        for (unsigned k = 0; k < oracle_.numPolicies(); ++k) {
            if (decisions[k] != oracle_.decisionsOf(set, k))
                return diff(i,
                            "decisions[set=" + std::to_string(set) +
                                "][" + std::to_string(k) + "]",
                            oracle_.decisionsOf(set, k),
                            decisions[k]);
        }

        if ((i + 1) % kSweepInterval == 0)
            return sweepResidency(i, production_,
                                  oracle_.residentBlocks());
        return std::nullopt;
    }

    std::optional<Mismatch>
    finalCheck(std::size_t n) override
    {
        return sweepResidency(n, production_,
                              oracle_.residentBlocks());
    }

    std::string
    describe() const override
    {
        return "Adaptive{" + production_.describe() +
               "} vs RefAdaptive";
    }

  private:
    static AdaptiveConfig
    withExactCounters(AdaptiveConfig config)
    {
        config.exactCounters = true;
        return config;
    }

    AdaptiveCache production_;
    RefAdaptiveCache oracle_;
};

// ---------------------------------------------------------------- //

/** SbarCache vs RefSbarCache. */
class SbarPair : public LockstepPair
{
  public:
    explicit SbarPair(const SbarConfig &config)
        : production_(config), oracle_(paramsOf(config))
    {
        adcache_assert(refPolicySupported(config.policyA));
        adcache_assert(refPolicySupported(config.policyB));
        // Leader placement is structural; check it once up front.
        for (unsigned s = 0; s < config.geometry().numSets; ++s)
            adcache_assert(production_.isLeader(s) ==
                           oracle_.isLeader(s));
    }

    std::optional<Mismatch>
    step(std::size_t i, const Access &access) override
    {
        const AccessResult r =
            production_.access(access.addr, access.write);
        const RefSbarOutcome o =
            oracle_.access(access.addr, access.write);

        if (r.hit != o.hit)
            return diff(i, "hit", o.hit, r.hit);

        const bool want_wb = o.evicted && o.evictedDirty;
        if (r.writeback != want_wb)
            return diff(i, "writeback", want_wb, r.writeback);
        if (want_wb && r.writebackAddr != o.evictedBlock)
            return diffAddr(i, "writeback_addr", o.evictedBlock,
                            r.writebackAddr);

        if (production_.globalChoice() != oracle_.globalChoice())
            return diff(i, "global_choice", oracle_.globalChoice(),
                        production_.globalChoice());
        if (production_.selectionFlips() != oracle_.selectionFlips())
            return diff(i, "selection_flips",
                        oracle_.selectionFlips(),
                        production_.selectionFlips());

        const CacheStats &s = production_.stats();
        if (s.hits != oracle_.hits())
            return diff(i, "stats.hits", oracle_.hits(), s.hits);
        if (s.misses != oracle_.misses())
            return diff(i, "stats.misses", oracle_.misses(), s.misses);
        if (s.evictions != oracle_.evictions())
            return diff(i, "stats.evictions", oracle_.evictions(),
                        s.evictions);
        if (s.writebacks != oracle_.writebacks())
            return diff(i, "stats.writebacks", oracle_.writebacks(),
                        s.writebacks);

        if ((i + 1) % kSweepInterval == 0)
            return sweepResidency(i, production_,
                                  oracle_.residentBlocks());
        return std::nullopt;
    }

    std::optional<Mismatch>
    finalCheck(std::size_t n) override
    {
        return sweepResidency(n, production_,
                              oracle_.residentBlocks());
    }

    std::string
    describe() const override
    {
        return "Sbar{" + production_.describe() + "} vs RefSbar";
    }

  private:
    static RefSbarParams
    paramsOf(const SbarConfig &config)
    {
        RefSbarParams p;
        p.geom = refGeometryOf(config.geometry());
        p.policyA = config.policyA;
        p.policyB = config.policyB;
        p.numLeaders = config.numLeaders;
        p.partialTagBits = config.partialTagBits;
        p.xorFoldTags = config.xorFoldTags;
        p.historyDepth = config.historyDepth;
        p.pselBits = config.pselBits;
        return p;
    }

    SbarCache production_;
    RefSbarCache oracle_;
};

} // namespace

std::string
Mismatch::format() const
{
    std::ostringstream out;
    out << "access #" << index << ": " << field << " diverged ("
        << detail << ")";
    return out.str();
}

std::optional<Mismatch>
DifferentialChecker::run(const std::vector<Access> &stream) const
{
    std::unique_ptr<LockstepPair> pair = factory_();
    for (std::size_t i = 0; i < stream.size(); ++i) {
        if (auto m = pair->step(i, stream[i]))
            return m;
    }
    return pair->finalCheck(stream.size());
}

std::string
DifferentialChecker::describePair() const
{
    return factory_()->describe();
}

RefGeometry
refGeometryOf(const CacheGeometry &geom)
{
    RefGeometry g;
    g.lineSize = geom.lineSize;
    g.numSets = geom.numSets;
    g.assoc = geom.assoc;
    return g;
}

PairFactory
makeCachePair(const CacheConfig &config)
{
    adcache_assert(refPolicySupported(config.policy));
    return [config] {
        return std::make_unique<CachePair>(config, config.policy);
    };
}

PairFactory
makeBuggyCachePair(const CacheConfig &config,
                   PolicyType oracle_policy)
{
    adcache_assert(refPolicySupported(oracle_policy));
    return [config, oracle_policy] {
        return std::make_unique<CachePair>(config, oracle_policy);
    };
}

PairFactory
makeAdaptivePair(const AdaptiveConfig &config)
{
    return [config] { return std::make_unique<AdaptivePair>(config); };
}

PairFactory
makeSbarPair(const SbarConfig &config)
{
    return [config] { return std::make_unique<SbarPair>(config); };
}

} // namespace adcache
