/**
 * @file
 * Reference replacement models for the differential oracle.
 *
 * These are deliberately naive re-implementations of the replacement
 * policies, written in the most obviously-correct style available:
 * LRU/FIFO/MRU as explicit stacks (ordered lists of ways) and LFU as
 * plain integer counters. They share no code with the production
 * policies in cache/policies.cc — the production code encodes the
 * same orders as per-way stamps and saturating counters — so a bug
 * in either implementation shows up as a lockstep divergence.
 *
 * Stochastic and heuristic policies (Random, TreePLRU, SRRIP) have no
 * reference model; refPolicySupported() reports which types can be
 * oracle-checked.
 */

#ifndef ADCACHE_ORACLE_REF_POLICY_HH
#define ADCACHE_ORACLE_REF_POLICY_HH

#include <memory>

#include "cache/replacement.hh"
#include "util/types.hh"

namespace adcache
{

/**
 * Reference model of one set's replacement metadata. Same event
 * interface as the production ReplacementPolicy, but victim() is
 * const: every reference model is a pure function of the event
 * history.
 */
class RefPolicy
{
  public:
    virtual ~RefPolicy() = default;

    virtual void onFill(unsigned way) = 0;
    virtual void onHit(unsigned way) = 0;
    virtual void onInvalidate(unsigned way) = 0;

    /**
     * Tag-carrying variants for policies whose metadata derives from
     * the referenced (stored) tag — CMS-LFU re-keys its sketch from
     * the tag on every fill *and* hit. Order-only policies ignore the
     * tag; owners always call these so the dispatch stays uniform.
     */
    virtual void
    onFillTag(unsigned way, Addr stored_tag)
    {
        (void)stored_tag;
        onFill(way);
    }

    virtual void
    onHitTag(unsigned way, Addr stored_tag)
    {
        (void)stored_tag;
        onHit(way);
    }

    /** Way the policy would evict. Only meaningful when the owning
     *  set is full (mirrors the production contract). */
    virtual unsigned victim() const = 0;

    virtual unsigned assoc() const = 0;
};

/** True iff @p type has a reference model. */
bool refPolicySupported(PolicyType type);

/** Build the reference model for @p type; panics if unsupported. */
std::unique_ptr<RefPolicy> makeRefPolicy(PolicyType type,
                                         unsigned assoc);

} // namespace adcache

#endif // ADCACHE_ORACLE_REF_POLICY_HH
