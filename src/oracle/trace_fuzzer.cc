#include "oracle/trace_fuzzer.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "util/logging.hh"

namespace adcache
{

namespace
{

std::uint64_t
parseEnvU64(const char *name, std::uint64_t fallback)
{
    const char *text = std::getenv(name);
    if (!text)
        return fallback;
    // strtoull silently wraps negative input; accept digits only.
    if (*text < '0' || *text > '9') {
        warn("ignoring malformed %s='%s'", name, text);
        return fallback;
    }
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end && *end == '\0')
        return std::uint64_t(v);
    warn("ignoring malformed %s='%s'", name, text);
    return fallback;
}

} // namespace

std::size_t
fuzzIters(std::size_t fallback)
{
    static const std::uint64_t v =
        parseEnvU64("ADCACHE_FUZZ_ITERS", fallback);
    return std::size_t(v);
}

std::uint64_t
fuzzSeed(std::uint64_t fallback)
{
    static const std::uint64_t v =
        parseEnvU64("ADCACHE_FUZZ_SEED", fallback);
    return v;
}

TraceFuzzer::TraceFuzzer(std::uint64_t seed, const FuzzShape &shape)
    : shape_(shape), rng_(seed)
{
    adcache_assert(shape.numSets >= 1 && shape.assoc >= 1);
}

Addr
TraceFuzzer::blockAddr(std::uint64_t block) const
{
    return block * shape_.lineSize;
}

void
TraceFuzzer::emitSegment(std::vector<Access> &out, std::size_t budget)
{
    const unsigned sets = shape_.numSets;
    const unsigned assoc = shape_.assoc;
    const double writes = rng_.chance(0.3)
                              ? (rng_.chance(0.5) ? 0.0 : 0.9)
                              : shape_.writeFraction;

    auto push = [&](std::uint64_t block) {
        out.push_back({blockAddr(block), rng_.chance(writes)});
    };

    // Block index landing in @p set with in-set tag ordinal @p t.
    auto setBlock = [&](unsigned set, std::uint64_t t) {
        return std::uint64_t(set) + t * sets;
    };

    switch (rng_.below(7)) {
      case 0: {
        // Thrash loop at assoc-1 / assoc / assoc+1 / assoc+2 blocks
        // of one set — the boundary where stack policies diverge.
        const unsigned set = unsigned(rng_.below(sets));
        const std::uint64_t depth =
            std::max<std::uint64_t>(1, assoc - 1 + rng_.below(4));
        for (std::size_t i = 0; i < budget; ++i)
            push(setBlock(set, i % depth));
        break;
      }
      case 1: {
        // Sequential scan from a random base.
        const std::uint64_t base = rng_.below(64) * sets;
        for (std::size_t i = 0; i < budget; ++i)
            push(base + i);
        break;
      }
      case 2: {
        // Phase flip: tight hot loop, then a flushing scan, repeat.
        const unsigned set = unsigned(rng_.below(sets));
        const std::uint64_t hot = std::max<std::uint64_t>(
            1, rng_.below(assoc) + 1);
        std::size_t i = 0;
        while (i < budget) {
            for (std::size_t j = 0; j < 3 * assoc && i < budget;
                 ++j, ++i)
                push(setBlock(set, j % hot));
            for (std::size_t j = 0; j < 2 * assoc && i < budget;
                 ++j, ++i)
                push(setBlock(set, 100 + rng_.below(4 * assoc)));
        }
        break;
      }
      case 3: {
        // Partial-tag alias cluster: same set, folded tags collide
        // (exactly, for low-bit folding; adversarially close for
        // XOR folding), full tags distinct.
        const unsigned set = unsigned(rng_.below(sets));
        const unsigned bits =
            shape_.partialTagBits != 0 ? shape_.partialTagBits : 6;
        const std::uint64_t stride = std::uint64_t(1) << bits;
        const std::uint64_t base_tag = rng_.below(stride);
        const std::uint64_t cluster = assoc + 1 + rng_.below(assoc);
        for (std::size_t i = 0; i < budget; ++i)
            push(setBlock(set,
                          base_tag + rng_.below(cluster) * stride));
        break;
      }
      case 4: {
        // Hot/cold mix across all sets.
        const std::uint64_t capacity =
            std::uint64_t(sets) * assoc;
        for (std::size_t i = 0; i < budget; ++i) {
            if (rng_.chance(0.5))
                push(rng_.below(capacity / 2 + 1));
            else
                push(capacity + rng_.below(4 * capacity + 1));
        }
        break;
      }
      case 5: {
        // Frequency phase shift: hammer one small block group until
        // its sketch estimates saturate, then move the hot group and
        // only occasionally re-touch the old one. Long runs cross
        // several decay_half windows, so CMS-LFU eviction order and
        // TinyLFU admission verdicts must track the *aging* counts —
        // the motif that catches decay-scheduling bugs.
        const unsigned set = unsigned(rng_.below(sets));
        const std::uint64_t group = 1 + rng_.below(assoc);
        const std::uint64_t old_base = rng_.below(16) * group;
        const std::uint64_t new_base = old_base + group +
                                       rng_.below(8) * group;
        for (std::size_t i = 0; i < budget; ++i) {
            const bool shifted = i >= budget / 2;
            if (shifted && rng_.chance(0.1))
                push(setBlock(set, old_base + rng_.below(group)));
            else
                push(setBlock(set,
                              (shifted ? new_base : old_base) +
                                  rng_.below(group)));
        }
        break;
      }
      default: {
        // Uniform random over a working set a few times capacity.
        const std::uint64_t span =
            std::uint64_t(sets) * assoc * (2 + rng_.below(4));
        for (std::size_t i = 0; i < budget; ++i)
            push(rng_.below(span));
        break;
      }
    }
}

std::vector<Access>
TraceFuzzer::generate(std::size_t length)
{
    std::vector<Access> out;
    out.reserve(length);
    while (out.size() < length) {
        const std::size_t remaining = length - out.size();
        const std::size_t budget = std::min<std::size_t>(
            remaining, 8 * shape_.assoc + rng_.below(64));
        emitSegment(out, budget);
    }
    out.resize(length);
    return out;
}

std::vector<Access>
TraceFuzzer::shrink(const DifferentialChecker &checker,
                    std::vector<Access> failing)
{
    auto fails = [&](std::vector<Access> &candidate) {
        if (auto m = checker.run(candidate)) {
            // Everything after the divergence is irrelevant.
            if (m->index + 1 < candidate.size())
                candidate.resize(m->index + 1);
            return true;
        }
        return false;
    };

    adcache_assert(fails(failing));

    // ddmin: try removing chunks at halving granularity until no
    // single-access removal keeps the stream failing.
    std::size_t chunks = 2;
    while (failing.size() >= 2) {
        const std::size_t n = failing.size();
        chunks = std::min(chunks, n);
        const std::size_t chunk_len = (n + chunks - 1) / chunks;

        bool removed = false;
        for (std::size_t c = 0; c < chunks; ++c) {
            const std::size_t lo = c * chunk_len;
            if (lo >= n)
                break;
            const std::size_t hi = std::min(n, lo + chunk_len);
            std::vector<Access> candidate;
            candidate.reserve(n - (hi - lo));
            candidate.insert(candidate.end(), failing.begin(),
                             failing.begin() + lo);
            candidate.insert(candidate.end(),
                             failing.begin() + hi, failing.end());
            if (!candidate.empty() && fails(candidate)) {
                failing = std::move(candidate);
                chunks = std::max<std::size_t>(2, chunks - 1);
                removed = true;
                break;
            }
        }
        if (!removed) {
            if (chunks >= n)
                break;  // single-access granularity exhausted
            chunks = std::min(n, 2 * chunks);
        }
    }
    return failing;
}

std::string
TraceFuzzer::toLiteral(const std::vector<Access> &stream)
{
    std::ostringstream out;
    out << "// " << stream.size() << " accesses\n";
    out << "static const Access kRepro[] = {\n";
    for (const Access &a : stream) {
        out << "    {0x" << std::hex << a.addr << std::dec << "ull, "
            << (a.write ? "true" : "false") << "},\n";
    }
    out << "};\n";
    return out.str();
}

} // namespace adcache
