/**
 * @file
 * Reference frequency-sketch models for the differential oracle.
 *
 * The production CountMinSketch packs saturating uint8 counters into
 * one flat row-major array and masks hashes with a power-of-two
 * width; these models store plain 2-D vectors of integers and take
 * the modulus. Both sides share only the *spec* pieces —
 * adapt::sketchRowHash(), adapt::sketchEntryKey() and
 * adapt::SketchParams — so they index the same cells in the same
 * order, and any divergence in bookkeeping (saturation, decay
 * scheduling, estimate minimisation) shows up under lockstep.
 */

#ifndef ADCACHE_ORACLE_REF_SKETCH_HH
#define ADCACHE_ORACLE_REF_SKETCH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "adapt/sketch.hh"
#include "oracle/ref_policy.hh"

namespace adcache
{

/** Naive Count-Min sketch: one vector of counters per hash row. */
class RefCountMinSketch
{
  public:
    explicit RefCountMinSketch(const adapt::SketchParams &params);

    /** Count one reference; every decayEvery adds halve all cells. */
    void add(std::uint64_t key);

    /** Minimum of the key's per-row counters. */
    std::uint32_t estimate(std::uint64_t key) const;

    std::uint64_t adds() const { return adds_; }
    std::uint64_t decays() const { return decays_; }
    const adapt::SketchParams &params() const { return params_; }

  private:
    adapt::SketchParams params_;
    std::vector<std::vector<std::uint32_t>> rows_; // [row][column]
    std::uint64_t adds_ = 0;
    std::uint64_t decays_ = 0;
};

/** Naive TinyLFU admission filter over a RefCountMinSketch. */
class RefTinyLfu
{
  public:
    explicit RefTinyLfu(const adapt::SketchParams &params)
        : sketch_(params)
    {
    }

    void touch(std::uint64_t key) { sketch_.add(key); }

    /** Candidate wins only a *strict* frequency majority. */
    bool
    admit(std::uint64_t candidate, std::uint64_t victim) const
    {
        return sketch_.estimate(candidate) > sketch_.estimate(victim);
    }

    const RefCountMinSketch &sketch() const { return sketch_; }

  private:
    RefCountMinSketch sketch_;
};

/**
 * Reference model of one set's CMS-LFU replacement metadata
 * (production: CmsLfuSets in cache/policy_sets.hh). All sets of one
 * cache share a single sketch, so the model is built per set via
 * this factory rather than makeRefPolicy(); @p sketch must outlive
 * the returned policy. Victim order: least estimated frequency, then
 * oldest fill, then lowest way.
 */
std::unique_ptr<RefPolicy>
makeRefCmsLfuPolicy(unsigned assoc, unsigned set, unsigned set_bits,
                    RefCountMinSketch *sketch);

} // namespace adcache

#endif // ADCACHE_ORACLE_REF_SKETCH_HH
